// Unit tests for the sparse-matrix substrate: COO/CSR/CSC containers,
// conversions, transpose, and structural validation.
#include <gtest/gtest.h>

#include <vector>

#include "matrix/convert.hpp"
#include "matrix/coo.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"

namespace msp {
namespace {

using IT = int;
using VT = double;

CooMatrix<IT, VT> sample_coo() {
  // 4x5 matrix:
  //   [ 1 .  2 . . ]
  //   [ . .  . . . ]
  //   [ 3 .  . 4 . ]
  //   [ . 5  . . 6 ]
  CooMatrix<IT, VT> coo(4, 5);
  coo.push(2, 3, 4.0);
  coo.push(0, 0, 1.0);
  coo.push(3, 4, 6.0);
  coo.push(0, 2, 2.0);
  coo.push(2, 0, 3.0);
  coo.push(3, 1, 5.0);
  return coo;
}

TEST(CooMatrix, PushAndSize) {
  CooMatrix<IT, VT> coo(3, 3);
  EXPECT_EQ(coo.nnz(), 0u);
  coo.push(0, 0, 1.0);
  coo.push(2, 1, 2.0);
  EXPECT_EQ(coo.nnz(), 2u);
}

TEST(CooMatrix, NegativeDimensionThrows) {
  EXPECT_THROW((CooMatrix<IT, VT>(-1, 3)), invalid_argument_error);
  EXPECT_THROW((CooMatrix<IT, VT>(3, -1)), invalid_argument_error);
}

TEST(CooMatrix, SortAndCombineMergesDuplicates) {
  CooMatrix<IT, VT> coo(2, 2);
  coo.push(1, 1, 1.0);
  coo.push(0, 0, 2.0);
  coo.push(1, 1, 3.0);
  coo.push(0, 0, 0.5);
  coo.sort_and_combine();
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_TRUE(coo.is_canonical());
  EXPECT_DOUBLE_EQ(coo.entries[0].val, 2.5);
  EXPECT_DOUBLE_EQ(coo.entries[1].val, 4.0);
}

TEST(CooMatrix, SortAndCombineCustomCombiner) {
  CooMatrix<IT, VT> coo(2, 2);
  coo.push(0, 1, 7.0);
  coo.push(0, 1, 9.0);
  coo.sort_and_combine([](VT a, VT) { return a; });
  ASSERT_EQ(coo.nnz(), 1u);
  EXPECT_DOUBLE_EQ(coo.entries[0].val, 7.0);
}

TEST(CooMatrix, IsCanonicalDetectsUnsorted) {
  CooMatrix<IT, VT> coo(3, 3);
  coo.push(1, 0, 1.0);
  coo.push(0, 0, 1.0);
  EXPECT_FALSE(coo.is_canonical());
  coo.sort_and_combine();
  EXPECT_TRUE(coo.is_canonical());
}

TEST(CsrMatrix, EmptyShape) {
  CsrMatrix<IT, VT> a(3, 4);
  EXPECT_EQ(a.nrows, 3);
  EXPECT_EQ(a.ncols, 4);
  EXPECT_EQ(a.nnz(), 0u);
  EXPECT_TRUE(a.check_structure());
  for (IT i = 0; i < 3; ++i) EXPECT_EQ(a.row_nnz(i), 0);
}

TEST(CsrMatrix, ZeroByZero) {
  CsrMatrix<IT, VT> a(0, 0);
  EXPECT_TRUE(a.check_structure());
  EXPECT_EQ(a.nnz(), 0u);
}

TEST(CsrMatrix, NegativeDimensionThrows) {
  EXPECT_THROW((CsrMatrix<IT, VT>(-2, 1)), invalid_argument_error);
}

TEST(CooToCsr, BasicConversion) {
  const CsrMatrix<IT, VT> a = coo_to_csr(sample_coo());
  EXPECT_TRUE(a.check_structure());
  EXPECT_EQ(a.nrows, 4);
  EXPECT_EQ(a.ncols, 5);
  ASSERT_EQ(a.nnz(), 6u);
  EXPECT_EQ(a.rowptr, (std::vector<IT>{0, 2, 2, 4, 6}));
  EXPECT_EQ(a.colids, (std::vector<IT>{0, 2, 0, 3, 1, 4}));
  EXPECT_EQ(a.values, (std::vector<VT>{1, 2, 3, 4, 5, 6}));
}

TEST(CooToCsr, DuplicatesAreAdded) {
  CooMatrix<IT, VT> coo(2, 2);
  coo.push(0, 1, 1.0);
  coo.push(0, 1, 2.0);
  const CsrMatrix<IT, VT> a = coo_to_csr(std::move(coo));
  ASSERT_EQ(a.nnz(), 1u);
  EXPECT_DOUBLE_EQ(a.values[0], 3.0);
}

TEST(CooToCsc, BasicConversion) {
  const CscMatrix<IT, VT> a = coo_to_csc(sample_coo());
  EXPECT_TRUE(a.check_structure());
  EXPECT_EQ(a.colptr, (std::vector<IT>{0, 2, 3, 4, 5, 6}));
  EXPECT_EQ(a.rowids, (std::vector<IT>{0, 2, 3, 0, 2, 3}));
  EXPECT_EQ(a.values, (std::vector<VT>{1, 3, 5, 2, 4, 6}));
}

TEST(CsrToCsc, RoundTripThroughCsc) {
  const CsrMatrix<IT, VT> a = coo_to_csr(sample_coo());
  const CscMatrix<IT, VT> c = csr_to_csc(a);
  EXPECT_TRUE(c.check_structure());
  const CsrMatrix<IT, VT> back = csc_to_csr(c);
  EXPECT_EQ(a, back);
}

TEST(CsrToCoo, RoundTrip) {
  const CsrMatrix<IT, VT> a = coo_to_csr(sample_coo());
  CooMatrix<IT, VT> coo = csr_to_coo(a);
  EXPECT_TRUE(coo.is_canonical());
  const CsrMatrix<IT, VT> back = coo_to_csr(std::move(coo));
  EXPECT_EQ(a, back);
}

TEST(Transpose, ContentIsTransposed) {
  const CsrMatrix<IT, VT> a = coo_to_csr(sample_coo());
  const CsrMatrix<IT, VT> t = transpose(a);
  EXPECT_TRUE(t.check_structure());
  EXPECT_EQ(t.nrows, a.ncols);
  EXPECT_EQ(t.ncols, a.nrows);
  EXPECT_EQ(t.nnz(), a.nnz());
  // Every (i,j,v) of A appears as (j,i,v) in T.
  for (IT i = 0; i < a.nrows; ++i) {
    for (IT p = a.rowptr[i]; p < a.rowptr[i + 1]; ++p) {
      const IT j = a.colids[p];
      bool found = false;
      for (IT q = t.rowptr[j]; q < t.rowptr[j + 1]; ++q) {
        if (t.colids[q] == i) {
          EXPECT_DOUBLE_EQ(t.values[q], a.values[p]);
          found = true;
        }
      }
      EXPECT_TRUE(found) << "missing transposed entry (" << j << "," << i << ")";
    }
  }
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  const CsrMatrix<IT, VT> a = coo_to_csr(sample_coo());
  EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Transpose, EmptyMatrix) {
  const CsrMatrix<IT, VT> a(3, 7);
  const CsrMatrix<IT, VT> t = transpose(a);
  EXPECT_EQ(t.nrows, 7);
  EXPECT_EQ(t.ncols, 3);
  EXPECT_EQ(t.nnz(), 0u);
}

TEST(CheckStructure, RejectsUnsortedColumns) {
  CsrMatrix<IT, VT> a(1, 4);
  a.rowptr = {0, 2};
  a.colids = {2, 1};  // unsorted
  a.values = {1.0, 2.0};
  EXPECT_FALSE(a.check_structure());
}

TEST(CheckStructure, RejectsOutOfRangeColumn) {
  CsrMatrix<IT, VT> a(1, 2);
  a.rowptr = {0, 1};
  a.colids = {5};
  a.values = {1.0};
  EXPECT_FALSE(a.check_structure());
}

TEST(CheckStructure, RejectsNonMonotoneRowptr) {
  CsrMatrix<IT, VT> a(2, 2);
  a.rowptr = {0, 1, 0};
  a.colids = {};
  a.values = {};
  EXPECT_FALSE(a.check_structure());
}

TEST(RowAccessors, SpansMatchArrays) {
  const CsrMatrix<IT, VT> a = coo_to_csr(sample_coo());
  const auto cols = a.row_cols(2);
  const auto vals = a.row_vals(2);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 3);
  EXPECT_DOUBLE_EQ(vals[0], 3.0);
  EXPECT_DOUBLE_EQ(vals[1], 4.0);
}

TEST(CscAccessors, SpansMatchArrays) {
  const CscMatrix<IT, VT> a = coo_to_csc(sample_coo());
  const auto rows = a.col_rows(0);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 0);
  EXPECT_EQ(rows[1], 2);
}

}  // namespace
}  // namespace msp
