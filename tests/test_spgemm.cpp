// Plain (unmasked) SpGEMM against the dense reference, plus the flop
// counters it shares with the benchmark harness.
#include <gtest/gtest.h>

#include "core/flops.hpp"
#include "core/spgemm.hpp"
#include "matrix/dense.hpp"
#include "semiring/semiring.hpp"
#include "test_support.hpp"

namespace msp {
namespace {

using IT = int;
using VT = double;
using SR = PlusTimes<VT>;
using msp::testing::csr_equal;
using msp::testing::random_csr;

class PlainSpgemm
    : public ::testing::TestWithParam<std::tuple<IT, IT, IT, double, int>> {};

TEST_P(PlainSpgemm, MatchesDenseReference) {
  const auto [m, k, n, density, seed] = GetParam();
  const auto a = random_csr<IT, VT>(m, k, density, seed);
  const auto b = random_csr<IT, VT>(k, n, density, seed + 100);
  const auto expected = reference_multiply<SR>(a, b);
  const auto actual = multiply<SR>(a, b);
  EXPECT_TRUE(csr_equal(expected, actual));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlainSpgemm,
    ::testing::Combine(::testing::Values(1, 13, 32), ::testing::Values(1, 17, 32),
                       ::testing::Values(1, 11, 32),
                       ::testing::Values(0.05, 0.3, 0.8),
                       ::testing::Values(1, 2)));

TEST(PlainSpgemmEdge, DimensionMismatchThrows) {
  const auto a = random_csr<IT, VT>(4, 5, 0.5, 1);
  const auto b = random_csr<IT, VT>(6, 4, 0.5, 2);
  EXPECT_THROW(multiply<SR>(a, b), invalid_argument_error);
}

TEST(PlainSpgemmEdge, EmptyOperands) {
  const CsrMatrix<IT, VT> a(0, 0);
  const auto c = multiply<SR>(a, a);
  EXPECT_EQ(c.nnz(), 0u);
  const CsrMatrix<IT, VT> a2(3, 4);
  const CsrMatrix<IT, VT> b2(4, 2);
  const auto c2 = multiply<SR>(a2, b2);
  EXPECT_EQ(c2.nrows, 3);
  EXPECT_EQ(c2.ncols, 2);
  EXPECT_EQ(c2.nnz(), 0u);
}

TEST(PlainSpgemmEdge, IdentityTimesA) {
  const auto a = random_csr<IT, VT>(16, 16, 0.3, 3);
  CooMatrix<IT, VT> icoo(16, 16);
  for (IT i = 0; i < 16; ++i) icoo.push(i, i, 1.0);
  const auto id = coo_to_csr(std::move(icoo));
  EXPECT_TRUE(csr_equal(a, multiply<SR>(id, a)));
  EXPECT_TRUE(csr_equal(a, multiply<SR>(a, id)));
}

TEST(PlainSpgemmEdge, MinPlusSemiring) {
  const auto a = random_csr<IT, VT>(12, 12, 0.3, 4);
  const auto expected = reference_multiply<MinPlus<VT>>(a, a);
  EXPECT_TRUE(csr_equal(expected, multiply<MinPlus<VT>>(a, a)));
}

TEST(Flops, MatchesBruteForceCount) {
  const auto a = random_csr<IT, VT>(20, 25, 0.2, 5);
  const auto b = random_csr<IT, VT>(25, 15, 0.2, 6);
  std::int64_t expected = 0;
  for (IT i = 0; i < a.nrows; ++i) {
    for (IT p = a.rowptr[i]; p < a.rowptr[i + 1]; ++p) {
      expected += b.row_nnz(a.colids[p]);
    }
  }
  EXPECT_EQ(total_flops(a, b), expected);
  EXPECT_EQ(total_flops_2x(a, b), 2 * expected);
  const auto per_row = row_flops(a, b);
  std::int64_t sum = 0;
  for (auto f : per_row) sum += f;
  EXPECT_EQ(sum, expected);
}

TEST(Flops, MismatchThrows) {
  const auto a = random_csr<IT, VT>(4, 5, 0.5, 7);
  EXPECT_THROW(row_flops(a, a), invalid_argument_error);
}

}  // namespace
}  // namespace msp
