// Concurrency hardening for the async shard pipeline (label: fuzz).
//
// Two layers:
//  * AsyncOpGroup unit tests — completion accounting, drain semantics,
//    error swallowing, multi-thread submission;
//  * randomized multi-thread ShardStore stress — N threads hammer one
//    store with pin/unpin (leases), prefetch, spill_all, and residency
//    polls, under budget 0 and tiny random budgets, then the store must
//    come out fully consistent: every payload spillable, resident bytes
//    zero, and every shard reloadable bit-identical to its split-time
//    content. A second variant injects transient read faults mid-churn.
//
// This suite is the primary target of the ThreadSanitizer CI job
// (-DMSPGEMM_TSAN=ON + `ctest -L 'fuzz|storage'`): the store's lock
// protocol, the prefetch worker handoff, and the atomic Stats counters
// are exactly the state TSan can prove races on.
//
// Seeding follows the suite convention: deterministic by default,
// MSP_TEST_SEED replays a failure, MSP_TEST_TRIALS scales the trial count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/async_io.hpp"
#include "core/shard.hpp"
#include "fault_injection.hpp"
#include "gen/rng.hpp"
#include "test_support.hpp"

namespace {

using namespace msp;
using msp::testing::csr_equal;
using msp::testing::FaultInjectionBackend;
using msp::testing::random_csr;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

std::uint64_t base_seed() { return env_u64("MSP_TEST_SEED", 20260807ULL); }

int trial_count(int fallback) {
  const bool seeded = std::getenv("MSP_TEST_SEED") != nullptr &&
                      *std::getenv("MSP_TEST_SEED") != '\0';
  return static_cast<int>(
      env_u64("MSP_TEST_TRIALS", seeded ? 1 : static_cast<std::uint64_t>(
                                               fallback)));
}

// ---------------------------------------------------------------------------
// AsyncOpGroup
// ---------------------------------------------------------------------------

TEST(AsyncOpGroupTest, RunsEverySubmittedOperation) {
  AsyncOpGroup g(2);
  EXPECT_EQ(g.workers(), 2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    g.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  g.drain();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(g.submitted(), 100u);
  EXPECT_EQ(g.completed(), 100u);
  EXPECT_EQ(g.failed(), 0u);
  EXPECT_EQ(g.first_error(), "");
}

TEST(AsyncOpGroupTest, DrainWaitsForInFlightOperations) {
  AsyncOpGroup g(1);
  std::atomic<bool> done{false};
  g.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    done.store(true, std::memory_order_release);
  });
  g.drain();
  EXPECT_TRUE(done.load(std::memory_order_acquire));
}

TEST(AsyncOpGroupTest, FailuresAreCountedNotRethrown) {
  AsyncOpGroup g(1);
  std::atomic<int> ran{0};
  g.submit([] { throw io_error("first boom"); });
  g.submit([&ran] { ran.fetch_add(1); });
  g.submit([] { throw io_error("second boom"); });
  g.drain();  // must not throw
  EXPECT_EQ(g.completed(), 3u);
  EXPECT_EQ(g.failed(), 2u);
  EXPECT_EQ(g.first_error(), "first boom");
  EXPECT_EQ(ran.load(), 1);
  // The group stays usable after failures.
  g.submit([&ran] { ran.fetch_add(1); });
  g.drain();
  EXPECT_EQ(ran.load(), 2);
}

// Regression: first-error tracking used to use first_error_.empty() as the
// "no error yet" sentinel, so a first failure whose what() was empty was
// indistinguishable from no failure and a LATER failure's message would
// overwrite the (empty) first one. A dedicated flag pins the real first.
TEST(AsyncOpGroupTest, EmptyWhatFirstErrorIsNotOverwritten) {
  AsyncOpGroup g(1);
  g.submit([] { throw io_error(""); });  // first failure: empty message
  g.drain();
  EXPECT_EQ(g.failed(), 1u);
  EXPECT_EQ(g.first_error(), "");
  g.submit([] { throw io_error("second boom"); });
  g.drain();
  EXPECT_EQ(g.failed(), 2u);
  // The empty first error is preserved, not replaced by "second boom".
  EXPECT_EQ(g.first_error(), "");
}

TEST(AsyncOpGroupTest, ConcurrentSubmittersAreSafe) {
  AsyncOpGroup g(3);
  std::atomic<int> counter{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g, &counter] {
      for (int i = 0; i < 50; ++i) {
        g.submit([&counter] {
          counter.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  g.drain();
  EXPECT_EQ(counter.load(), 200);
  EXPECT_EQ(g.completed(), 200u);
}

TEST(AsyncOpGroupTest, DestructorFinishesTheQueue) {
  std::atomic<int> counter{0};
  {
    AsyncOpGroup g(1);
    for (int i = 0; i < 20; ++i) {
      g.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after the queue is drained
  EXPECT_EQ(counter.load(), 20);
}

TEST(AsyncOpGroupTest, RejectsZeroWorkers) {
  EXPECT_THROW(AsyncOpGroup g(0), invalid_argument_error);
}

// ---------------------------------------------------------------------------
// Multi-thread ShardStore stress
// ---------------------------------------------------------------------------

/// One stress trial: `threads` worker threads churn one store for `ops`
/// operations each, then the store is checked for full consistency. With
/// `fault` set, threads occasionally arm one-shot read faults; leases then
/// tolerate (and count) typed io_errors.
void run_stress_trial(std::uint64_t seed, int threads, int ops,
                      bool with_faults) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " (replay: MSP_TEST_SEED=" + std::to_string(seed) +
               " MSP_TEST_TRIALS=1)" + (with_faults ? " faults=on" : ""));
  Xoshiro256 rng(seed);

  const auto a = random_csr<int, double>(64, 64, 0.25, rng.next());
  const int k = 4 + static_cast<int>(rng.next_below(3));  // 4..6 shards

  std::shared_ptr<FaultInjectionBackend> fault;
  ShardStore::Options opt;
  if (with_faults) {
    // A caller-provided backend exercises the shared-backend path too.
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("mspgemm-stress-" + std::to_string(seed));
    std::filesystem::create_directories(dir);
    fault = std::make_shared<FaultInjectionBackend>(
        std::make_shared<LocalDirBackend>(dir, /*purge_on_destroy=*/true));
    opt.backend = fault;
  }
  opt.prefetch_workers = 1 + static_cast<int>(rng.next_below(2));

  // Budget axis: zero (nothing unpinned survives) or a tiny random cap.
  std::size_t total = 0;
  {
    ShardedMatrix<int, double> probe(a, k);
    total = probe.total_bytes();
  }
  opt.resident_budget = rng.next_below(2) == 0 ? 0 : rng.next_below(total + 1);

  ShardStore store(opt);
  ShardedMatrix<int, double> sa(a, k, &store);
  std::vector<CsrMatrix<int, double>> expected;
  for (int s = 0; s < k; ++s) {
    expected.push_back(slice_rows(a, sa.row_begin(s), sa.row_end(s)));
  }

  std::atomic<bool> mismatch{false};
  std::atomic<int> io_errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 trng(seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(t + 1));
      for (int i = 0; i < ops; ++i) {
        const int s = static_cast<int>(trng.next_below(
            static_cast<std::size_t>(k)));
        switch (trng.next_below(10)) {
          case 0:
          case 1:
            sa.prefetch(s);
            break;
          case 2:
            store.spill_all();  // no write faults armed: must not throw
            break;
          case 3:
            (void)sa.resident(s);
            (void)store.resident_bytes();
            break;
          case 4:
            if (with_faults && trng.next_below(4) == 0) {
              fault->fail_next_reads(1);
            }
            break;
          default: {
            try {
              const auto held = sa.lease(s);
              if (!csr_equal(expected[static_cast<std::size_t>(s)],
                             held.matrix())) {
                mismatch.store(true, std::memory_order_relaxed);
              }
            } catch (const io_error&) {
              io_errors.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_FALSE(mismatch.load()) << "a lease observed a corrupted payload";
  if (!with_faults) {
    EXPECT_EQ(io_errors.load(), 0) << "faultless run surfaced io_errors";
  }

  // Settle and check the store comes out fully consistent.
  if (with_faults) fault->fail_next_reads(0);
  store.wait_prefetches();
  store.spill_all();
  EXPECT_EQ(store.resident_bytes(), 0u);
  for (int s = 0; s < k; ++s) {
    const auto held = sa.lease(s);
    EXPECT_TRUE(csr_equal(expected[static_cast<std::size_t>(s)],
                          held.matrix()))
        << "shard " << s << " corrupted after churn";
  }
  // Conservation: every prefetch scheduled either completed (hit, wasted,
  // or still-resident-unclaimed) or failed. Claimed + wasted + failed can
  // never exceed scheduled.
  const auto& st = store.stats();
  EXPECT_LE(st.prefetch_hits.load() + st.prefetch_wasted.load() +
                st.prefetch_failed.load(),
            st.prefetches.load());
}

TEST(AsyncShardStress, ConcurrentChurnKeepsStoreConsistent) {
  const int trials = trial_count(4);
  for (int i = 0; i < trials; ++i) {
    run_stress_trial(base_seed() + static_cast<std::uint64_t>(i),
                     /*threads=*/4, /*ops=*/150, /*with_faults=*/false);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(AsyncShardStress, ConcurrentChurnSurvivesTransientReadFaults) {
  const int trials = trial_count(3);
  for (int i = 0; i < trials; ++i) {
    run_stress_trial(base_seed() + 1000 + static_cast<std::uint64_t>(i),
                     /*threads=*/4, /*ops=*/120, /*with_faults=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
