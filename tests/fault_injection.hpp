// FaultInjectionBackend — a StorageBackend decorator that injects
// scheduled failures into an inner backend, for hardening tests of the
// spill/reload machinery (tests/test_storage.cpp, tests/test_async_shard
// .cpp). Failure modes:
//
//   fail_next_reads(n)    the next n read() calls throw io_error
//   fail_next_writes(n)   the next n write() calls throw io_error
//   refuse_writes(on)     every write() throws an ENOSPC-style io_error
//                         ("no space left") until turned off
//   short_next_write()    the next write() silently stores only half the
//                         payload (a torn write the backend failed to
//                         detect — consumers must catch it on read)
//   truncate_next_read()  the next read() returns only half the blob
//                         (a torn read)
//
// Fault state and the operation counters are mutex-protected: the
// ShardStore prefetch worker calls read() concurrently with the test
// thread arming faults.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "core/storage.hpp"

namespace msp::testing {

class FaultInjectionBackend : public StorageBackend {
 public:
  explicit FaultInjectionBackend(std::shared_ptr<StorageBackend> inner)
      : inner_(std::move(inner)) {}

  // -- fault schedule -------------------------------------------------------
  void fail_next_reads(int n) {
    std::lock_guard<std::mutex> lk(mu_);
    fail_reads_ = n;
  }
  void fail_next_writes(int n) {
    std::lock_guard<std::mutex> lk(mu_);
    fail_writes_ = n;
  }
  void refuse_writes(bool on) {
    std::lock_guard<std::mutex> lk(mu_);
    refuse_writes_ = on;
  }
  void short_next_write() {
    std::lock_guard<std::mutex> lk(mu_);
    short_write_ = true;
  }
  void truncate_next_read() {
    std::lock_guard<std::mutex> lk(mu_);
    truncate_read_ = true;
  }

  // -- observation ----------------------------------------------------------
  [[nodiscard]] std::size_t reads() const {
    std::lock_guard<std::mutex> lk(mu_);
    return reads_;
  }
  [[nodiscard]] std::size_t writes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return writes_;
  }
  [[nodiscard]] StorageBackend& inner() { return *inner_; }

  // -- StorageBackend -------------------------------------------------------
  void write(const std::string& id, const void* data,
             std::size_t size) override {
    bool shorten = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++writes_;
      if (refuse_writes_) {
        throw io_error("fault-injection: no space left on device: " + id);
      }
      if (fail_writes_ > 0) {
        --fail_writes_;
        throw io_error("fault-injection: injected write error: " + id);
      }
      shorten = std::exchange(short_write_, false);
    }
    inner_->write(id, data, shorten ? size / 2 : size);
  }

  ReadBuffer read(const std::string& id) override {
    bool truncate = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++reads_;
      if (fail_reads_ > 0) {
        --fail_reads_;
        throw io_error("fault-injection: injected read error: " + id);
      }
      truncate = std::exchange(truncate_read_, false);
    }
    ReadBuffer blob = inner_->read(id);
    if (truncate) blob.truncate_for_testing(blob.size() / 2);
    return blob;
  }

  void remove(const std::string& id) override { inner_->remove(id); }

  bool exists(const std::string& id) override { return inner_->exists(id); }

  [[nodiscard]] std::string name() const override {
    return "fault-injection(" + inner_->name() + ")";
  }

 private:
  std::shared_ptr<StorageBackend> inner_;
  mutable std::mutex mu_;
  int fail_reads_ = 0;
  int fail_writes_ = 0;
  bool refuse_writes_ = false;
  bool short_write_ = false;
  bool truncate_read_ = false;
  std::size_t reads_ = 0;
  std::size_t writes_ = 0;
};

}  // namespace msp::testing
