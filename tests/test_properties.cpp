// Property-based tests: structural invariants of Masked SpGEMM that must
// hold for every scheme on randomly generated inputs, independent of the
// dense oracle (paper §2, §4, §6).
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/dispatch.hpp"
#include "core/spgemm.hpp"
#include "gen/erdos_renyi.hpp"
#include "matrix/ops.hpp"
#include "semiring/semiring.hpp"
#include "test_support.hpp"

namespace msp {
namespace {

using IT = int;
using VT = double;
using SR = PlusTimes<VT>;
using msp::testing::csr_equal;
using msp::testing::random_csr;

std::set<std::pair<IT, IT>> pattern_of(const CsrMatrix<IT, VT>& a) {
  std::set<std::pair<IT, IT>> s;
  for (IT i = 0; i < a.nrows; ++i) {
    for (IT p = a.rowptr[i]; p < a.rowptr[i + 1]; ++p) {
      s.emplace(i, a.colids[p]);
    }
  }
  return s;
}

struct PropertyCase {
  IT n;
  double density;
  double mask_density;
  std::uint64_t seed;
};

class MaskedSpgemmProperties
    : public ::testing::TestWithParam<PropertyCase> {};

/// pattern(C) ⊆ pattern(M) for a regular mask; disjoint for a complement.
TEST_P(MaskedSpgemmProperties, OutputPatternRespectsMask) {
  const auto& c = GetParam();
  const auto a = random_csr<IT, VT>(c.n, c.n, c.density, c.seed);
  const auto b = random_csr<IT, VT>(c.n, c.n, c.density, c.seed + 1);
  const auto m = random_csr<IT, VT>(c.n, c.n, c.mask_density, c.seed + 2);
  const auto mask_pattern = pattern_of(m);
  for (Scheme s : all_schemes()) {
    const auto out = run_scheme<SR>(s, a, b, m, MaskKind::kMask);
    for (const auto& coord : pattern_of(out)) {
      EXPECT_TRUE(mask_pattern.count(coord))
          << scheme_name(s) << ": output entry outside mask";
    }
    if (!scheme_supports_complement(s)) continue;
    const auto outc = run_scheme<SR>(s, a, b, m, MaskKind::kComplement);
    for (const auto& coord : pattern_of(outc)) {
      EXPECT_FALSE(mask_pattern.count(coord))
          << scheme_name(s) << ": complemented output entry inside mask";
    }
  }
}

/// Masked and complement-masked outputs partition the plain product:
/// C_mask ∪ C_compl == A·B (as patterns and values).
TEST_P(MaskedSpgemmProperties, MaskAndComplementPartitionPlainProduct) {
  const auto& c = GetParam();
  const auto a = random_csr<IT, VT>(c.n, c.n, c.density, c.seed + 10);
  const auto b = random_csr<IT, VT>(c.n, c.n, c.density, c.seed + 11);
  const auto m = random_csr<IT, VT>(c.n, c.n, c.mask_density, c.seed + 12);
  const auto plain = multiply<SR>(a, b);
  for (Scheme s : all_schemes()) {
    if (!scheme_supports_complement(s)) continue;
    const auto masked = run_scheme<SR>(s, a, b, m, MaskKind::kMask);
    const auto compl_masked =
        run_scheme<SR>(s, a, b, m, MaskKind::kComplement);
    const auto merged = ewise_add(masked, compl_masked);
    EXPECT_TRUE(csr_equal(plain, merged)) << scheme_name(s);
  }
}

/// All schemes agree with each other bit-exactly on integer-valued data.
TEST_P(MaskedSpgemmProperties, AllSchemesAgreePairwise) {
  const auto& c = GetParam();
  const auto a = random_csr<IT, VT>(c.n, c.n, c.density, c.seed + 20);
  const auto b = random_csr<IT, VT>(c.n, c.n, c.density, c.seed + 21);
  const auto m = random_csr<IT, VT>(c.n, c.n, c.mask_density, c.seed + 22);
  const auto schemes = all_schemes();
  const auto reference = run_scheme<SR>(schemes.front(), a, b, m);
  for (std::size_t i = 1; i < schemes.size(); ++i) {
    EXPECT_TRUE(csr_equal(reference, run_scheme<SR>(schemes[i], a, b, m)))
        << scheme_name(schemes[i]) << " disagrees with "
        << scheme_name(schemes.front());
  }
}

/// The symbolic phase's row counts equal the numeric output's row sizes:
/// 1P and 2P must produce identical matrices.
TEST_P(MaskedSpgemmProperties, OneAndTwoPhaseIdentical) {
  const auto& c = GetParam();
  const auto a = random_csr<IT, VT>(c.n, c.n, c.density, c.seed + 30);
  const auto b = random_csr<IT, VT>(c.n, c.n, c.density, c.seed + 31);
  const auto m = random_csr<IT, VT>(c.n, c.n, c.mask_density, c.seed + 32);
  const std::vector<std::pair<Scheme, Scheme>> pairs = {
      {Scheme::kMsa1P, Scheme::kMsa2P},
      {Scheme::kHash1P, Scheme::kHash2P},
      {Scheme::kMca1P, Scheme::kMca2P},
      {Scheme::kHeap1P, Scheme::kHeap2P},
      {Scheme::kHeapDot1P, Scheme::kHeapDot2P},
      {Scheme::kInner1P, Scheme::kInner2P},
  };
  for (const auto& [one, two] : pairs) {
    EXPECT_TRUE(csr_equal(run_scheme<SR>(one, a, b, m),
                          run_scheme<SR>(two, a, b, m)))
        << scheme_name(one) << " vs " << scheme_name(two);
    if (!scheme_supports_complement(one)) continue;
    EXPECT_TRUE(
        csr_equal(run_scheme<SR>(one, a, b, m, MaskKind::kComplement),
                  run_scheme<SR>(two, a, b, m, MaskKind::kComplement)))
        << scheme_name(one) << " vs " << scheme_name(two) << " (complement)";
  }
}

/// Output rows are sorted and duplicate-free — required by every consumer.
TEST_P(MaskedSpgemmProperties, OutputRowsSortedAndUnique) {
  const auto& c = GetParam();
  const auto a = random_csr<IT, VT>(c.n, c.n, c.density, c.seed + 40);
  const auto b = random_csr<IT, VT>(c.n, c.n, c.density, c.seed + 41);
  const auto m = random_csr<IT, VT>(c.n, c.n, c.mask_density, c.seed + 42);
  for (Scheme s : all_schemes()) {
    for (MaskKind kind : {MaskKind::kMask, MaskKind::kComplement}) {
      if (kind == MaskKind::kComplement && !scheme_supports_complement(s)) {
        continue;
      }
      const auto out = run_scheme<SR>(s, a, b, m, kind);
      EXPECT_TRUE(out.check_structure()) << scheme_name(s);
    }
  }
}

/// Masking with a full (all-ones) mask equals the plain product; masking
/// with an empty mask yields an empty matrix (and vice versa, complemented).
TEST_P(MaskedSpgemmProperties, FullAndEmptyMaskDegenerateCorrectly) {
  const auto& c = GetParam();
  const auto a = random_csr<IT, VT>(c.n, c.n, c.density, c.seed + 50);
  const auto b = random_csr<IT, VT>(c.n, c.n, c.density, c.seed + 51);
  CooMatrix<IT, VT> full_coo(c.n, c.n);
  for (IT i = 0; i < c.n; ++i) {
    for (IT j = 0; j < c.n; ++j) full_coo.push(i, j, 1.0);
  }
  const auto full = coo_to_csr(std::move(full_coo));
  const CsrMatrix<IT, VT> empty(c.n, c.n);
  const auto plain = multiply<SR>(a, b);
  for (Scheme s : all_schemes()) {
    EXPECT_TRUE(csr_equal(plain, run_scheme<SR>(s, a, b, full)))
        << scheme_name(s) << " with full mask";
    EXPECT_EQ(run_scheme<SR>(s, a, b, empty).nnz(), 0u)
        << scheme_name(s) << " with empty mask";
    if (!scheme_supports_complement(s)) continue;
    EXPECT_EQ(run_scheme<SR>(s, a, b, full, MaskKind::kComplement).nnz(), 0u)
        << scheme_name(s) << " with complemented full mask";
    EXPECT_TRUE(csr_equal(
        plain, run_scheme<SR>(s, a, b, empty, MaskKind::kComplement)))
        << scheme_name(s) << " with complemented empty mask";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaskedSpgemmProperties,
    ::testing::Values(PropertyCase{24, 0.15, 0.15, 1},
                      PropertyCase{40, 0.05, 0.30, 2},
                      PropertyCase{40, 0.30, 0.05, 3},
                      PropertyCase{64, 0.10, 0.10, 4},
                      PropertyCase{17, 0.50, 0.50, 5}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      const auto& c = info.param;
      return "n" + std::to_string(c.n) + "_d" +
             std::to_string(static_cast<int>(c.density * 100)) + "_md" +
             std::to_string(static_cast<int>(c.mask_density * 100)) + "_s" +
             std::to_string(c.seed);
    });

/// Larger-scale agreement test on generator output (ER graphs), checking
/// the parallel path with realistically sized rows.
TEST(MaskedSpgemmScale, SchemesAgreeOnErdosRenyi) {
  const IT n = 1 << 10;
  const auto a = erdos_renyi<IT, VT>(n, 12.0, 101);
  const auto m = erdos_renyi<IT, VT>(n, 24.0, 103);
  const auto reference = run_scheme<SR>(Scheme::kMsa1P, a, a, m);
  for (Scheme s : all_schemes()) {
    EXPECT_TRUE(csr_equal(reference, run_scheme<SR>(s, a, a, m)))
        << scheme_name(s);
  }
}

TEST(MaskedSpgemmScale, ComplementSchemesAgreeOnErdosRenyi) {
  const IT n = 1 << 9;
  const auto a = erdos_renyi<IT, VT>(n, 8.0, 201);
  const auto m = erdos_renyi<IT, VT>(n, 16.0, 203);
  const auto reference =
      run_scheme<SR>(Scheme::kMsa1P, a, a, m, MaskKind::kComplement);
  for (Scheme s : all_schemes()) {
    if (!scheme_supports_complement(s)) continue;
    EXPECT_TRUE(csr_equal(
        reference, run_scheme<SR>(s, a, a, m, MaskKind::kComplement)))
        << scheme_name(s);
  }
}

}  // namespace
}  // namespace msp
