// Tests for the graph generators: determinism, statistical sanity of the
// random models, and the closed-form properties of the structured graphs.
#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "gen/rng.hpp"
#include "gen/structured.hpp"
#include "matrix/ops.hpp"

namespace msp {
namespace {

using IT = int;
using VT = double;

TEST(Rng, DeterministicForSeedAndStream) {
  Xoshiro256 a(42, 7), b(42, 7), c(42, 8);
  bool any_differs = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "distinct streams should diverge";
}

TEST(Rng, DoublesInUnitInterval) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(ErdosRenyi, Deterministic) {
  const auto a = erdos_renyi<IT, VT>(256, 8.0, 5);
  const auto b = erdos_renyi<IT, VT>(256, 8.0, 5);
  EXPECT_EQ(a, b);
  const auto c = erdos_renyi<IT, VT>(256, 8.0, 6);
  EXPECT_NE(a.nnz(), 0u);
  EXPECT_FALSE(a == c);
}

TEST(ErdosRenyi, ExpectedDensity) {
  const IT n = 2048;
  const double degree = 16.0;
  const auto a = erdos_renyi<IT, VT>(n, degree, 7);
  const double actual = static_cast<double>(a.nnz()) / n;
  // nnz/n concentrates tightly around `degree` (relative sd ~ 1/sqrt(n*d)).
  EXPECT_NEAR(actual, degree, 0.15 * degree);
  EXPECT_TRUE(a.check_structure());
}

TEST(ErdosRenyi, ZeroDegreeIsEmpty) {
  const auto a = erdos_renyi<IT, VT>(64, 0.0, 1);
  EXPECT_EQ(a.nnz(), 0u);
}

TEST(ErdosRenyi, FullDensitySaturates) {
  const IT n = 32;
  const auto a = erdos_renyi<IT, VT>(n, static_cast<double>(2 * n), 1);
  EXPECT_EQ(a.nnz(), static_cast<std::size_t>(n) * n);
}

TEST(ErdosRenyi, NegativeArgsThrow) {
  EXPECT_THROW((erdos_renyi<IT, VT>(-1, 2.0, 1)), invalid_argument_error);
  EXPECT_THROW((erdos_renyi<IT, VT>(4, -2.0, 1)), invalid_argument_error);
}

TEST(Rmat, EdgeCountAndRange) {
  const auto coo = rmat_edges<IT, VT>(10, 16.0);
  EXPECT_EQ(coo.nrows, 1024);
  EXPECT_EQ(coo.nnz(), 16u * 1024u);
  for (const auto& t : coo.entries) {
    EXPECT_GE(t.row, 0);
    EXPECT_LT(t.row, 1024);
    EXPECT_GE(t.col, 0);
    EXPECT_LT(t.col, 1024);
  }
}

TEST(Rmat, Deterministic) {
  const auto a = rmat_edges<IT, VT>(8, 8.0);
  const auto b = rmat_edges<IT, VT>(8, 8.0);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::size_t i = 0; i < a.nnz(); ++i) {
    EXPECT_EQ(a.entries[i], b.entries[i]);
  }
}

TEST(Rmat, SkewedDegreeDistribution) {
  // With Graph500 parameters the max degree far exceeds the average —
  // that skew is the reason R-MAT stands in for social/web graphs.
  const auto g = rmat_graph<IT, VT>(12, 16.0);
  const auto deg = row_degrees(g);
  const IT max_deg = *std::max_element(deg.begin(), deg.end());
  const double avg = static_cast<double>(g.nnz()) / g.nrows;
  EXPECT_GT(static_cast<double>(max_deg), 5.0 * avg);
}

TEST(RmatGraph, SymmetricNoSelfLoopsPatternValues) {
  const auto g = rmat_graph<IT, VT>(8, 8.0);
  EXPECT_TRUE(g.check_structure());
  const auto gt = transpose(g);
  EXPECT_EQ(g, gt);  // symmetric
  for (IT i = 0; i < g.nrows; ++i) {
    for (IT p = g.rowptr[i]; p < g.rowptr[i + 1]; ++p) {
      EXPECT_NE(g.colids[p], i);          // no self-loops
      EXPECT_DOUBLE_EQ(g.values[p], 1.0);  // pattern values
    }
  }
}

TEST(Rmat, ScaleOutOfRangeThrows) {
  EXPECT_THROW((rmat_edges<IT, VT>(-1, 8.0)), invalid_argument_error);
  EXPECT_THROW((rmat_edges<IT, VT>(31, 8.0)), invalid_argument_error);
}

TEST(Structured, CompleteGraph) {
  const auto k5 = complete_graph<IT, VT>(5);
  EXPECT_EQ(k5.nnz(), 20u);  // 5*4 directed edges
  EXPECT_EQ(k5, transpose(k5));
}

TEST(Structured, CycleGraph) {
  const auto c6 = cycle_graph<IT, VT>(6);
  EXPECT_EQ(c6.nnz(), 12u);
  const auto deg = row_degrees(c6);
  for (IT d : deg) EXPECT_EQ(d, 2);
  // Degenerate small cycles must not produce duplicate or self edges.
  EXPECT_EQ((cycle_graph<IT, VT>(2).nnz()), 2u);
  EXPECT_EQ((cycle_graph<IT, VT>(1).nnz()), 0u);
  EXPECT_EQ((cycle_graph<IT, VT>(0).nnz()), 0u);
}

TEST(Structured, PathGraph) {
  const auto p5 = path_graph<IT, VT>(5);
  EXPECT_EQ(p5.nnz(), 8u);  // 4 undirected edges
  EXPECT_EQ(p5.row_nnz(0), 1);
  EXPECT_EQ(p5.row_nnz(2), 2);
  EXPECT_EQ(p5.row_nnz(4), 1);
}

TEST(Structured, StarGraph) {
  const auto s8 = star_graph<IT, VT>(8);
  EXPECT_EQ(s8.row_nnz(0), 7);
  for (IT i = 1; i < 8; ++i) EXPECT_EQ(s8.row_nnz(i), 1);
}

TEST(Structured, GridGraph) {
  const auto g = grid_graph<IT, VT>(3, 4);
  EXPECT_EQ(g.nrows, 12);
  // 3*3 horizontal + 2*4 vertical undirected edges = 17 edges = 34 nnz.
  EXPECT_EQ(g.nnz(), 34u);
  EXPECT_EQ(g, transpose(g));
}

TEST(Structured, PetersenGraphIsCubic) {
  const auto p = petersen_graph<IT, VT>();
  EXPECT_EQ(p.nrows, 10);
  EXPECT_EQ(p.nnz(), 30u);  // 15 undirected edges
  for (IT i = 0; i < 10; ++i) EXPECT_EQ(p.row_nnz(i), 3);
  EXPECT_EQ(p, transpose(p));
}

TEST(Structured, BarbellGraph) {
  const auto b = barbell_graph<IT, VT>(4);
  EXPECT_EQ(b.nrows, 8);
  // Two K4 (12 nnz each) plus one bridge (2 nnz).
  EXPECT_EQ(b.nnz(), 26u);
  EXPECT_EQ(b, transpose(b));
}

}  // namespace
}  // namespace msp
