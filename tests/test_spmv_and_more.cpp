// Tests for masked SpMV (push and pull), direction-optimized BFS,
// clustering coefficients, and the phase-statistics instrumentation.
#include <gtest/gtest.h>

#include <queue>

#include "apps/bfs_direction_optimized.hpp"
#include "apps/clustering.hpp"
#include "apps/tricount.hpp"
#include "core/masked_spmv.hpp"
#include "gen/rmat.hpp"
#include "gen/structured.hpp"
#include "matrix/dense.hpp"
#include "test_support.hpp"

namespace msp {
namespace {

using IT = int;
using VT = double;
using SR = PlusTimes<VT>;
using msp::testing::random_csr;

SparseVector<IT, VT> reference_masked_spmv(const SparseVector<IT, VT>& x,
                                           const CsrMatrix<IT, VT>& a,
                                           const SparseVector<IT, VT>& m,
                                           bool complemented) {
  // Dense reference: y_j = Σ_k x_k A(k,j) where the mask admits j.
  std::vector<VT> acc(static_cast<std::size_t>(a.ncols), VT{0});
  std::vector<char> any(static_cast<std::size_t>(a.ncols), 0);
  for (std::size_t p = 0; p < x.nnz(); ++p) {
    const IT k = x.indices[p];
    for (IT q = a.rowptr[k]; q < a.rowptr[k + 1]; ++q) {
      acc[static_cast<std::size_t>(a.colids[q])] +=
          x.values[p] * a.values[q];
      any[static_cast<std::size_t>(a.colids[q])] = 1;
    }
  }
  std::vector<char> allowed(static_cast<std::size_t>(a.ncols),
                            complemented ? 1 : 0);
  for (IT j : m.indices) {
    allowed[static_cast<std::size_t>(j)] = complemented ? 0 : 1;
  }
  SparseVector<IT, VT> y(a.ncols);
  for (IT j = 0; j < a.ncols; ++j) {
    if (allowed[static_cast<std::size_t>(j)] &&
        any[static_cast<std::size_t>(j)]) {
      y.push(j, acc[static_cast<std::size_t>(j)]);
    }
  }
  return y;
}

class MaskedSpmv : public ::testing::TestWithParam<
                       std::tuple<double, double, bool, int>> {};

TEST_P(MaskedSpmv, PushAndPullMatchReference) {
  const auto [density, mask_density, complemented, seed] = GetParam();
  const IT n = 48;
  const auto a = random_csr<IT, VT>(n, n, density, seed);
  const auto a_csc = csr_to_csc(a);
  const auto x_mat = random_csr<IT, VT>(1, n, 0.3, seed + 7);
  const auto m_mat = random_csr<IT, VT>(1, n, mask_density, seed + 8);
  const auto x = row_as_vector(x_mat, 0);
  const auto m = row_as_vector(m_mat, 0);
  const auto expected = reference_masked_spmv(x, a, m, complemented);
  const auto push = masked_spmv_push<SR>(x, a, m, complemented);
  const auto pull = masked_spmv_pull<SR>(x, a_csc, m, complemented);
  EXPECT_EQ(push, expected);
  EXPECT_EQ(pull, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaskedSpmv,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.6),
                       ::testing::Values(0.05, 0.3, 0.8),
                       ::testing::Bool(), ::testing::Values(1, 2)));

TEST(MaskedSpmvEdge, DimensionMismatchThrows) {
  const auto a = random_csr<IT, VT>(5, 6, 0.3, 3);
  const auto a_csc = csr_to_csc(a);
  SparseVector<IT, VT> x(5), m(6), bad_x(4), bad_m(5);
  EXPECT_NO_THROW((masked_spmv_push<SR>(x, a, m)));
  EXPECT_THROW((masked_spmv_push<SR>(bad_x, a, m)), invalid_argument_error);
  EXPECT_THROW((masked_spmv_push<SR>(x, a, bad_m)), invalid_argument_error);
  EXPECT_THROW((masked_spmv_pull<SR>(bad_x, a_csc, m)),
               invalid_argument_error);
  EXPECT_THROW((masked_spmv_pull<SR>(x, a_csc, bad_m)),
               invalid_argument_error);
}

TEST(MaskedSpmvEdge, EmptyVectorGivesEmptyResult) {
  const auto a = random_csr<IT, VT>(6, 6, 0.4, 4);
  SparseVector<IT, VT> x(6), m(6);
  m.push(2, 1.0);
  EXPECT_EQ(masked_spmv_push<SR>(x, a, m).nnz(), 0u);
  EXPECT_EQ(masked_spmv_pull<SR>(x, csr_to_csc(a), m).nnz(), 0u);
}

// ---------------------------------------------------------------------
// Direction-optimized BFS

std::vector<IT> bfs_levels_reference(const CsrMatrix<IT, VT>& adj, IT src) {
  std::vector<IT> dist(static_cast<std::size_t>(adj.nrows), IT{-1});
  std::queue<IT> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const IT v = q.front();
    q.pop();
    for (IT p = adj.rowptr[v]; p < adj.rowptr[v + 1]; ++p) {
      const IT w = adj.colids[p];
      if (dist[static_cast<std::size_t>(w)] < 0) {
        dist[static_cast<std::size_t>(w)] =
            dist[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

TEST(DirectionOptimizedBfs, MatchesReferenceOnRmat) {
  const auto g = rmat_graph<IT, VT>(9, 16.0);
  for (IT src : {0, 17, 300}) {
    const auto r = bfs_direction_optimized(g, src);
    EXPECT_EQ(r.level, bfs_levels_reference(g, src)) << "source " << src;
  }
}

TEST(DirectionOptimizedBfs, UsesBothDirectionsOnDenseGraph) {
  // R-MAT with edge factor 16 saturates quickly: the middle levels should
  // flip to pull, the first level(s) stay push.
  const auto g = rmat_graph<IT, VT>(10, 16.0);
  const auto r = bfs_direction_optimized(g, IT{0});
  EXPECT_GT(r.push_steps, 0);
  EXPECT_GT(r.pull_steps, 0);
}

TEST(DirectionOptimizedBfs, PathGraphStaysPush) {
  // A path's frontier is always one vertex: pull never pays off.
  const auto g = path_graph<IT, VT>(64);
  const auto r = bfs_direction_optimized(g, IT{0});
  EXPECT_EQ(r.pull_steps, 0);
  for (IT i = 0; i < 64; ++i) EXPECT_EQ(r.level[i], i);
}

TEST(DirectionOptimizedBfs, ForcedPullMatchesReference) {
  // A huge alpha switches to pull as soon as the frontier grows; beta = 0
  // disables switching back. Exercises the pull path end to end.
  const auto g = rmat_graph<IT, VT>(8, 8.0);
  const auto r = bfs_direction_optimized(g, IT{0}, 1e18, 0.0);
  EXPECT_EQ(r.level, bfs_levels_reference(g, IT{0}));
  EXPECT_GT(r.pull_steps, 0);
  EXPECT_LE(r.push_steps, 1);  // only the first (non-growing) level pushes
}

TEST(DirectionOptimizedBfs, InvalidInputThrows) {
  const auto g = path_graph<IT, VT>(4);
  EXPECT_THROW(bfs_direction_optimized(g, IT{9}), invalid_argument_error);
  const auto rect = random_csr<IT, VT>(3, 4, 0.5, 5);
  EXPECT_THROW(bfs_direction_optimized(rect, IT{0}), invalid_argument_error);
}

// ---------------------------------------------------------------------
// Clustering coefficients

TEST(Clustering, CompleteGraphIsFullyClustered) {
  const auto k6 = complete_graph<IT, VT>(6);
  const auto r = clustering_coefficients(k6);
  for (IT i = 0; i < 6; ++i) {
    EXPECT_EQ(r.triangles_per_vertex[i], 10);  // C(5,2)
    EXPECT_DOUBLE_EQ(r.local_coefficient[i], 1.0);
  }
  EXPECT_DOUBLE_EQ(r.average_coefficient, 1.0);
}

TEST(Clustering, TriangleFreeGraphIsZero) {
  const auto g = grid_graph<IT, VT>(5, 5);
  const auto r = clustering_coefficients(g);
  for (auto t : r.triangles_per_vertex) EXPECT_EQ(t, 0);
  EXPECT_DOUBLE_EQ(r.average_coefficient, 0.0);
}

TEST(Clustering, BarbellBridgeVertices) {
  // In barbell(4): block vertices not on the bridge have coefficient 1;
  // bridge endpoints see their K4 triangles (3) out of C(4,2)=6 wedges.
  const auto b = barbell_graph<IT, VT>(4);
  const auto r = clustering_coefficients(b);
  EXPECT_EQ(r.triangles_per_vertex[0], 3);  // inside K4 only
  EXPECT_DOUBLE_EQ(r.local_coefficient[0], 1.0);
  EXPECT_EQ(r.triangles_per_vertex[3], 3);  // bridge endpoint, degree 4
  EXPECT_DOUBLE_EQ(r.local_coefficient[3], 0.5);
}

TEST(Clustering, TotalsMatchTriangleCount) {
  const auto g = rmat_graph<IT, VT>(8, 8.0);
  const auto r = clustering_coefficients(g, Scheme::kHash1P);
  std::int64_t total = 0;
  for (auto t : r.triangles_per_vertex) total += t;
  // Σ_v tri(v) = 3 · (number of triangles).
  const auto tc = triangle_count(g, Scheme::kMsa1P);
  EXPECT_EQ(total, 3 * tc.triangles);
}

// ---------------------------------------------------------------------
// Phase statistics instrumentation

TEST(Stats, OnePhaseFillsBoundAndTimings) {
  const auto a = random_csr<IT, VT>(64, 64, 0.2, 11);
  const auto m = random_csr<IT, VT>(64, 64, 0.3, 12);
  MaskedSpgemmStats stats;
  MaskedSpgemmOptions opt;
  opt.stats = &stats;
  const auto c = masked_multiply<SR>(a, a, m, opt);
  EXPECT_EQ(stats.output_nnz, c.nnz());
  EXPECT_EQ(stats.bound_nnz, m.nnz());  // 1P bound = nnz(M)
  EXPECT_GE(stats.numeric_seconds, 0.0);
  EXPECT_GE(stats.assemble_seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.symbolic_seconds, 0.0);  // no symbolic phase in 1P
  EXPECT_LE(stats.bound_tightness(), 1.0);
  EXPECT_GE(stats.bound_tightness(), 0.0);
}

TEST(Stats, TwoPhaseFillsSymbolic) {
  const auto a = random_csr<IT, VT>(64, 64, 0.2, 13);
  const auto m = random_csr<IT, VT>(64, 64, 0.3, 14);
  MaskedSpgemmStats stats;
  MaskedSpgemmOptions opt;
  opt.phase = MaskedPhase::kTwoPhase;
  opt.algorithm = MaskedAlgorithm::kHash;
  opt.stats = &stats;
  const auto c = masked_multiply<SR>(a, a, m, opt);
  EXPECT_EQ(stats.output_nnz, c.nnz());
  EXPECT_EQ(stats.bound_nnz, 0u);  // exact counts, no bound
  EXPECT_GE(stats.symbolic_seconds, 0.0);
  EXPECT_GE(stats.numeric_seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.bound_tightness(), 1.0);
}

TEST(Stats, BoundTightnessReflectsSparseProduct) {
  // Empty A: output is empty but the mask bound is large -> tightness 0.
  const CsrMatrix<IT, VT> a(32, 32);
  const auto m = random_csr<IT, VT>(32, 32, 0.5, 15);
  MaskedSpgemmStats stats;
  MaskedSpgemmOptions opt;
  opt.stats = &stats;
  (void)masked_multiply<SR>(a, a, m, opt);
  EXPECT_EQ(stats.output_nnz, 0u);
  EXPECT_EQ(stats.bound_nnz, m.nnz());
  EXPECT_DOUBLE_EQ(stats.bound_tightness(), 0.0);
}

}  // namespace
}  // namespace msp
