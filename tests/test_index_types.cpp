// Template instantiation coverage: the whole pipeline with 64-bit indices
// and with float/integer value types — matrices beyond 2^31 nonzeros and
// exact integer semirings are supported configurations, so the templates
// must compile and agree with the default instantiation.
#include <gtest/gtest.h>

#include <cstdint>

#include "apps/tricount.hpp"
#include "core/dispatch.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/structured.hpp"
#include "matrix/dense.hpp"
#include "matrix/ops.hpp"

namespace msp {
namespace {

template <class IT, class VT>
CsrMatrix<IT, VT> small_random(IT n, double degree, std::uint64_t seed) {
  return erdos_renyi<IT, VT>(n, degree, seed);
}

template <class IT, class VT>
void run_pipeline() {
  using SR = PlusTimes<VT>;
  const IT n = 64;
  const auto a = small_random<IT, VT>(n, 6.0, 1);
  const auto b = small_random<IT, VT>(n, 6.0, 2);
  const auto m = small_random<IT, VT>(n, 10.0, 3);
  const auto expected = reference_masked_multiply<SR>(a, b, m, false);
  for (Scheme s : all_schemes()) {
    const auto c = run_scheme<SR>(s, a, b, m);
    EXPECT_EQ(c, expected) << scheme_name(s);
  }
  const auto expected_c = reference_masked_multiply<SR>(a, b, m, true);
  for (Scheme s : all_schemes()) {
    if (!scheme_supports_complement(s)) continue;
    EXPECT_EQ(run_scheme<SR>(s, a, b, m, MaskKind::kComplement), expected_c)
        << scheme_name(s);
  }
}

TEST(IndexTypes, Int64Indices) { run_pipeline<std::int64_t, double>(); }
TEST(IndexTypes, Int32Short) { run_pipeline<std::int32_t, float>(); }
TEST(IndexTypes, IntegerValues) { run_pipeline<int, std::int64_t>(); }

TEST(IndexTypes, TricountWithInt64) {
  const auto k8 = complete_graph<std::int64_t, double>(8);
  EXPECT_EQ(triangle_count(k8, Scheme::kMsa1P).triangles, 56);  // C(8,3)
  EXPECT_EQ(triangle_count(k8, Scheme::kHash2P).triangles, 56);
}

TEST(IndexTypes, OpsWithInt64) {
  const auto a = small_random<std::int64_t, double>(32, 4.0, 7);
  const auto t = transpose(a);
  EXPECT_EQ(transpose(t), a);
  const auto s = symmetrize(a);
  EXPECT_EQ(s, transpose(s));
  EXPECT_GE(reduce_sum(s), 0.0);
}

TEST(IndexTypes, AdaptiveWithInt64) {
  using SR = PlusTimes<double>;
  const auto a = small_random<std::int64_t, double>(48, 5.0, 9);
  const auto m = small_random<std::int64_t, double>(48, 8.0, 10);
  MaskedSpgemmOptions opt;
  opt.algorithm = MaskedAlgorithm::kAdaptive;
  const auto expected = reference_masked_multiply<SR>(a, a, m, false);
  EXPECT_EQ(masked_multiply<SR>(a, a, m, opt), expected);
}

}  // namespace
}  // namespace msp
