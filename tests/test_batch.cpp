// Tests for the batched multi-mask API (ExecutionContext::multiply_batch /
// run_scheme_batch and the app-level batch entries): the batch must be
// bit-identical to N sequential multiply() calls across Scheme × mask kind
// × mask semantics × {int, int64_t}, including aliased and empty masks and
// mixed warm/cold plans. Plus regression tests for this PR's bugfixes:
// clear()/reset_stats() counter hygiene, the plan-cache fingerprint-
// collision cross-check, and the complement-row hash-table capacity clamp.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/bc.hpp"
#include "apps/tricount.hpp"
#include "conformance/conformance_support.hpp"
#include "core/dispatch.hpp"
#include "core/exec_context.hpp"
#include "core/tiled_engine.hpp"
#include "core/hash_accumulator.hpp"
#include "core/plan.hpp"
#include "gen/erdos_renyi.hpp"
#include "test_support.hpp"

namespace {

using namespace msp;
using msp::conformance::Config;
using msp::conformance::all_configs;
using msp::conformance::corpus;
using msp::conformance::run_config;
using msp::conformance::with_explicit_zeros;
using msp::testing::csr_equal;
using msp::testing::random_csr;

using SR = PlusTimes<double>;

// ---------------------------------------------------------------------------
// Batch vs sequential: bit-identical over the conformance sweep
// ---------------------------------------------------------------------------

/// The mask batch for a case: the case's own mask, an empty mask, an extra
/// random mask (with explicit zeros, so the valued leg is non-trivial), and
/// an alias of the first — the shapes of batch a service would send.
template <class IT>
std::vector<CsrMatrix<IT, double>> extra_masks(const CsrMatrix<IT, double>& m) {
  std::vector<CsrMatrix<IT, double>> extra;
  extra.emplace_back(m.nrows, m.ncols);  // empty
  extra.push_back(with_explicit_zeros(
      random_csr<IT, double>(m.nrows, m.ncols, 0.3, 977)));
  return extra;
}

template <class IT>
void sweep_batch_vs_sequential() {
  for (const auto& cse : corpus<IT>()) {
    const auto extra = extra_masks(cse.m);
    const std::vector<const CsrMatrix<IT, double>*> masks = {
        &cse.m, &extra[0], &extra[1], &cse.m};  // last aliases the first
    ExecutionContext ctx;
    for (const Config& cfg : all_configs()) {
      SCOPED_TRACE(cse.name + "/" + cfg.name());
      const auto batch = run_scheme_batch<SR>(cfg.scheme, cse.a, cse.b, masks,
                                              ctx, cfg.kind, nullptr,
                                              cfg.semantics);
      ASSERT_EQ(batch.size(), masks.size());
      for (std::size_t q = 0; q < masks.size(); ++q) {
        const auto expected =
            run_config<SR, IT, double>(cfg, cse.a, cse.b, *masks[q]);
        EXPECT_TRUE(csr_equal(expected, batch[q])) << "mask " << q;
      }
      // Replay: plans, structures, and the batch partition all come from
      // the caches now; results must not change.
      const auto warm = run_scheme_batch<SR>(cfg.scheme, cse.a, cse.b, masks,
                                             ctx, cfg.kind, nullptr,
                                             cfg.semantics);
      for (std::size_t q = 0; q < masks.size(); ++q) {
        EXPECT_TRUE(csr_equal(batch[q], warm[q])) << "warm mask " << q;
      }
    }
  }
}

TEST(BatchConformance, MatchesSequentialOnFullCorpusInt32) {
  sweep_batch_vs_sequential<int>();
}

TEST(BatchConformance, MatchesSequentialOnFullCorpusInt64) {
  sweep_batch_vs_sequential<std::int64_t>();
}

TEST(BatchConformance, BitIdenticalToSequentialContextCalls) {
  // Larger, skewed instance: the batch path (global partition, shared
  // artifacts) against N sequential context multiplies, entry by entry.
  const auto a = erdos_renyi<int, double>(300, 8.0, 331);
  const auto b = erdos_renyi<int, double>(300, 8.0, 332);
  std::vector<CsrMatrix<int, double>> mask_store;
  for (std::uint64_t s = 0; s < 8; ++s) {
    mask_store.push_back(
        random_csr<int, double>(300, 300, 0.02 + 0.04 * double(s), 400 + s));
  }
  std::vector<const CsrMatrix<int, double>*> masks;
  for (const auto& m : mask_store) masks.push_back(&m);

  for (Scheme s : {Scheme::kMsa1P, Scheme::kMsa2P, Scheme::kHash2P,
                   Scheme::kHeap1P, Scheme::kInner2P}) {
    SCOPED_TRACE(scheme_name(s));
    MaskedSpgemmOptions opt;
    ASSERT_TRUE(scheme_to_options(s, opt));
    ExecutionContext batch_ctx;
    const auto batch = batch_ctx.multiply_batch<SR>(a, b, masks, opt);
    ExecutionContext seq_ctx;
    for (std::size_t q = 0; q < masks.size(); ++q) {
      const auto seq = seq_ctx.multiply<SR>(a, b, *masks[q], opt);
      EXPECT_TRUE(csr_equal(seq, batch[q])) << "mask " << q;
    }
    EXPECT_EQ(batch_ctx.cache_stats().batch_calls, 1u);
    EXPECT_EQ(batch_ctx.cache_stats().batch_masks, masks.size());
  }
}

// ---------------------------------------------------------------------------
// Batch semantics: aliasing, empty batches, warm/cold mixes, stats
// ---------------------------------------------------------------------------

TEST(MultiplyBatch, EmptyBatchAndNullMask) {
  const auto a = random_csr<int, double>(10, 10, 0.3, 501);
  ExecutionContext ctx;
  const std::vector<const CsrMatrix<int, double>*> none;
  EXPECT_TRUE(ctx.multiply_batch<SR>(a, a, none).empty());
  const std::vector<const CsrMatrix<int, double>*> bad = {nullptr};
  EXPECT_THROW((ctx.multiply_batch<SR>(a, a, bad)), invalid_argument_error);
}

TEST(MultiplyBatch, AliasedMasksShareOnePlan) {
  const auto a = random_csr<int, double>(40, 40, 0.2, 511);
  const auto b = random_csr<int, double>(40, 40, 0.2, 512);
  const auto m = random_csr<int, double>(40, 40, 0.3, 513);
  ExecutionContext ctx;
  const std::vector<const CsrMatrix<int, double>*> masks = {&m, &m, &m};
  const auto outs = ctx.multiply_batch<SR>(a, b, masks);
  ASSERT_EQ(outs.size(), 3u);
  const auto expected = masked_multiply<SR>(a, b, m);
  for (const auto& c : outs) EXPECT_TRUE(csr_equal(expected, c));
  // One plan serves all three aliases: one miss, two hits.
  EXPECT_EQ(ctx.plan_count(), 1u);
  EXPECT_EQ(ctx.cache_stats().plan_misses, 1u);
  EXPECT_EQ(ctx.cache_stats().plan_hits, 2u);
}

TEST(MultiplyBatch, WarmBatchHitsPlansAndSkipsSymbolic) {
  const auto a = random_csr<int, double>(60, 60, 0.15, 521);
  const auto b = random_csr<int, double>(60, 60, 0.15, 522);
  const auto m1 = random_csr<int, double>(60, 60, 0.2, 523);
  const auto m2 = random_csr<int, double>(60, 60, 0.3, 524);
  ExecutionContext ctx;
  MaskedSpgemmOptions opt;
  opt.phase = MaskedPhase::kTwoPhase;
  const std::vector<const CsrMatrix<int, double>*> masks = {&m1, &m2};

  MaskedSpgemmStats first;
  opt.stats = &first;
  const auto cold = ctx.multiply_batch<SR>(a, b, masks, opt);
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_FALSE(first.symbolic_skipped);

  MaskedSpgemmStats second;
  opt.stats = &second;
  const auto warm = ctx.multiply_batch<SR>(a, b, masks, opt);
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_TRUE(second.symbolic_skipped);
  EXPECT_DOUBLE_EQ(second.symbolic_seconds, 0.0);
  for (std::size_t q = 0; q < masks.size(); ++q) {
    EXPECT_TRUE(csr_equal(cold[q], warm[q]));
  }
}

TEST(MultiplyBatch, MixedWarmColdBatch) {
  const auto a = random_csr<int, double>(50, 50, 0.2, 531);
  const auto b = random_csr<int, double>(50, 50, 0.2, 532);
  const auto warm_m = random_csr<int, double>(50, 50, 0.25, 533);
  const auto cold_m = random_csr<int, double>(50, 50, 0.25, 534);
  ExecutionContext ctx;
  MaskedSpgemmOptions opt;
  opt.phase = MaskedPhase::kTwoPhase;
  // Warm one mask through the sequential path; its plan (with adopted
  // symbolic structure) must be reused by the batch next to a cold plan.
  const auto warm_seq = ctx.multiply<SR>(a, b, warm_m, opt);
  const std::vector<const CsrMatrix<int, double>*> masks = {&warm_m, &cold_m};
  const auto outs = ctx.multiply_batch<SR>(a, b, masks, opt);
  EXPECT_TRUE(csr_equal(warm_seq, outs[0]));
  EXPECT_TRUE(csr_equal(masked_multiply<SR>(a, b, cold_m, opt), outs[1]));
}

TEST(MultiplyBatch, SharesFlopsAcrossColdPlans) {
  const auto a = random_csr<int, double>(40, 40, 0.2, 541);
  const auto b = random_csr<int, double>(40, 40, 0.2, 542);
  const auto m1 = random_csr<int, double>(40, 40, 0.3, 543);
  const auto m2 = random_csr<int, double>(40, 40, 0.3, 544);
  ExecutionContext ctx;
  const std::vector<const CsrMatrix<int, double>*> masks = {&m1, &m2};
  (void)ctx.multiply_batch<SR>(a, b, masks);
  auto& p1 = ctx.plan_for<int, double, double>(a, b, m1, MaskKind::kMask,
                                               MaskSemantics::kStructural);
  auto& p2 = ctx.plan_for<int, double, double>(a, b, m2, MaskKind::kMask,
                                               MaskSemantics::kStructural);
  // Both batch-built plans hold the *same* flops vector, not equal copies.
  EXPECT_EQ(p1.flops_ptr().get(), p2.flops_ptr().get());
}

// ---------------------------------------------------------------------------
// Bugfix: clear() resets counters; reset_stats() keeps the caches
// ---------------------------------------------------------------------------

TEST(CacheHygiene, ClearResetsStatsAndPlans) {
  const auto a = random_csr<int, double>(30, 30, 0.2, 551);
  const auto m = random_csr<int, double>(30, 30, 0.3, 552);
  ExecutionContext ctx;
  (void)ctx.multiply<SR>(a, a, m);
  (void)ctx.multiply<SR>(a, a, m);
  ASSERT_GT(ctx.cache_stats().plan_hits + ctx.cache_stats().plan_misses, 0u);
  ASSERT_GT(ctx.cache_stats().plan_seconds, 0.0);

  ctx.clear();
  // A context reused across bench configurations must start from zero:
  // plans AND counters (hit/miss/plan_seconds used to leak here).
  EXPECT_EQ(ctx.plan_count(), 0u);
  EXPECT_EQ(ctx.cache_stats().plan_hits, 0u);
  EXPECT_EQ(ctx.cache_stats().plan_misses, 0u);
  EXPECT_EQ(ctx.cache_stats().plan_evictions, 0u);
  EXPECT_DOUBLE_EQ(ctx.cache_stats().plan_seconds, 0.0);
}

TEST(CacheHygiene, ClearAndResetStatsCoverTiledCounters) {
  // Regression pin: the tiled/prefetch counters added after the original
  // clear()/reset_stats() fix must reset with everything else — a context
  // reused across bench configurations would otherwise carry shard and
  // prefetch traffic from the previous one.
  const auto a = random_csr<int, double>(24, 24, 0.3, 571);
  const auto m = random_csr<int, double>(24, 24, 0.4, 572);
  TiledEngine tiled;
  (void)tiled.multiply<SR>(Scheme::kMsa2P, ShardedMatrix<int, double>(a, 3),
                           a, m);
  ASSERT_GT(tiled.cache_stats().tiled_calls, 0u);
  ASSERT_GT(tiled.cache_stats().tiled_shards, 0u);

  tiled.engine().reset_stats();
  EXPECT_EQ(tiled.cache_stats().tiled_calls, 0u);
  EXPECT_EQ(tiled.cache_stats().tiled_shards, 0u);
  EXPECT_EQ(tiled.cache_stats().shard_spills, 0u);
  EXPECT_EQ(tiled.cache_stats().shard_reloads, 0u);
  EXPECT_EQ(tiled.cache_stats().prefetch_hits, 0u);
  EXPECT_EQ(tiled.cache_stats().prefetch_wasted, 0u);
  EXPECT_EQ(tiled.cache_stats().plan_partial_refreshes, 0u);
  EXPECT_EQ(tiled.cache_stats().plan_rows_refreshed, 0u);

  (void)tiled.multiply<SR>(Scheme::kMsa2P, ShardedMatrix<int, double>(a, 3),
                           a, m);
  ASSERT_GT(tiled.cache_stats().tiled_calls, 0u);
  tiled.engine().clear();
  EXPECT_EQ(tiled.cache_stats().tiled_calls, 0u);
  EXPECT_EQ(tiled.cache_stats().tiled_shards, 0u);
}

TEST(CacheHygiene, TiledEngineClearDropsItsFlopsCache) {
  // The genuine stale state of the tiled layer: TiledEngine's per-shard
  // flops cache is keyed by split fingerprints and used to survive
  // Engine::clear() untouched.
  const auto a = random_csr<int, double>(24, 24, 0.3, 581);
  const auto m = random_csr<int, double>(24, 24, 0.4, 582);
  TiledEngine tiled;
  (void)tiled.multiply<SR>(Scheme::kMsa2P, ShardedMatrix<int, double>(a, 3),
                           a, m);
  ASSERT_GT(tiled.flops_cache_size(), 0u);
  ASSERT_GT(tiled.engine().context().plan_count(), 0u);

  tiled.clear();
  EXPECT_EQ(tiled.flops_cache_size(), 0u);
  EXPECT_EQ(tiled.engine().context().plan_count(), 0u);
  EXPECT_EQ(tiled.cache_stats().tiled_calls, 0u);

  // Still fully functional after the wipe.
  const auto c = tiled.multiply<SR>(
      Scheme::kMsa2P, ShardedMatrix<int, double>(a, 3), a, m);
  Engine mono;
  EXPECT_TRUE(csr_equal(mono.multiply_scheme<SR>(Scheme::kMsa2P, a, a, m), c));
}

TEST(CacheHygiene, ResetStatsKeepsPlansWarm) {
  const auto a = random_csr<int, double>(30, 30, 0.2, 561);
  const auto m = random_csr<int, double>(30, 30, 0.3, 562);
  ExecutionContext ctx;
  (void)ctx.multiply<SR>(a, a, m);
  ASSERT_EQ(ctx.plan_count(), 1u);

  ctx.reset_stats();
  EXPECT_EQ(ctx.cache_stats().plan_misses, 0u);
  EXPECT_DOUBLE_EQ(ctx.cache_stats().plan_seconds, 0.0);
  // Plans survived: the next call is a pure hit.
  MaskedSpgemmStats stats;
  MaskedSpgemmOptions opt;
  opt.stats = &stats;
  (void)ctx.multiply<SR>(a, a, m, opt);
  EXPECT_TRUE(stats.plan_cache_hit);
  EXPECT_EQ(ctx.cache_stats().plan_hits, 1u);
  EXPECT_EQ(ctx.cache_stats().plan_misses, 0u);
}

// ---------------------------------------------------------------------------
// Bugfix: fingerprint-collision / shape-mismatch cross-check
// ---------------------------------------------------------------------------

TEST(PlanMismatch, CollidingKeysAreDemotedToMisses) {
  ExecutionContext ctx;
  // Collapse every fingerprint: all operand sets now share one plan key,
  // simulating a 64-bit collision (or operands re-bound across shapes).
  ctx.set_fingerprint_transform_for_testing(
      +[](std::uint64_t) -> std::uint64_t { return 42; });

  const auto a1 = random_csr<int, double>(30, 30, 0.2, 571);
  const auto m1 = random_csr<int, double>(30, 30, 0.3, 572);
  const auto c1 = ctx.multiply<SR>(a1, a1, m1);
  EXPECT_TRUE(csr_equal(masked_multiply<SR>(a1, a1, m1), c1));
  EXPECT_EQ(ctx.cache_stats().plan_mismatches, 0u);

  // Different shape, same (forced) key: without the hit-path cross-check
  // this would execute the 30×30 plan against 20×25 operands.
  const auto a2 = random_csr<int, double>(20, 15, 0.3, 573);
  const auto b2 = random_csr<int, double>(15, 25, 0.3, 574);
  const auto m2 = random_csr<int, double>(20, 25, 0.3, 575);
  MaskedSpgemmStats stats;
  MaskedSpgemmOptions opt;
  opt.stats = &stats;
  const auto c2 = ctx.multiply<SR>(a2, b2, m2, opt);
  EXPECT_TRUE(csr_equal(masked_multiply<SR>(a2, b2, m2), c2));
  EXPECT_FALSE(stats.plan_cache_hit);
  EXPECT_EQ(ctx.cache_stats().plan_mismatches, 1u);

  // And back: the cache now holds the 20×25 plan under the same key.
  const auto c1_again = ctx.multiply<SR>(a1, a1, m1);
  EXPECT_TRUE(csr_equal(masked_multiply<SR>(a1, a1, m1), c1_again));
  EXPECT_EQ(ctx.cache_stats().plan_mismatches, 2u);
}

TEST(PlanMismatch, BatchPartitionCacheSurvivesCollidingKeys) {
  ExecutionContext ctx;
  ctx.set_fingerprint_transform_for_testing(
      +[](std::uint64_t) -> std::uint64_t { return 42; });

  // Aliased masks within each batch: under the forced-constant transform
  // two *distinct* same-shaped masks would collide into one plan, which is
  // the equal-shape residual risk the cross-check deliberately does not
  // claim to catch. The shape change between the batches is the case it
  // does catch.
  const auto a1 = random_csr<int, double>(40, 40, 0.2, 576);
  const auto m1 = random_csr<int, double>(40, 40, 0.25, 577);
  const std::vector<const CsrMatrix<int, double>*> batch1 = {&m1, &m1};
  const auto out1 = ctx.multiply_batch<SR>(a1, a1, batch1);
  EXPECT_TRUE(csr_equal(masked_multiply<SR>(a1, a1, m1), out1[0]));

  // Smaller operands colliding into the same plan keys: the cached batch
  // partition for batch1 (rows up to 39) must not be replayed against the
  // 20-row operands — acquire_plan's mismatch purge plus the partition
  // cache's own row-count cross-check both stand in the way.
  const auto a2 = random_csr<int, double>(20, 20, 0.3, 579);
  const auto m2 = random_csr<int, double>(20, 20, 0.3, 580);
  const std::vector<const CsrMatrix<int, double>*> batch2 = {&m2, &m2};
  const auto out2 = ctx.multiply_batch<SR>(a2, a2, batch2);
  EXPECT_TRUE(csr_equal(masked_multiply<SR>(a2, a2, m2), out2[0]));
  EXPECT_TRUE(csr_equal(masked_multiply<SR>(a2, a2, m2), out2[1]));
  EXPECT_GT(ctx.cache_stats().plan_mismatches, 0u);
}

TEST(PlanMismatch, GenuineHitsStillHit) {
  ExecutionContext ctx;
  ctx.set_fingerprint_transform_for_testing(
      +[](std::uint64_t) -> std::uint64_t { return 7; });
  const auto a = random_csr<int, double>(25, 25, 0.2, 581);
  const auto m = random_csr<int, double>(25, 25, 0.3, 582);
  (void)ctx.multiply<SR>(a, a, m);
  MaskedSpgemmStats stats;
  MaskedSpgemmOptions opt;
  opt.stats = &stats;
  (void)ctx.multiply<SR>(a, a, m, opt);
  // Same shapes pass the cross-check, so the collision-keyed plan is
  // still a (correct) hit for pattern-identical operands.
  EXPECT_TRUE(stats.plan_cache_hit);
  EXPECT_EQ(ctx.cache_stats().plan_mismatches, 0u);
}

// ---------------------------------------------------------------------------
// Bugfix: complement-row hash table capacity clamp
// ---------------------------------------------------------------------------

TEST(HashComplement, TableCapacityClampedToNcols) {
  using Kernel = HashKernel<SR, int, double, double>;
  // Dense 8-column operands: row flops = 64, mask row nnz = 4. The
  // unclamped bound was 4 + min(8, 64) = 12 → a 64-slot table; distinct
  // keys can never exceed ncols = 8 → 32 slots suffice.
  const auto a = random_csr<int, double>(8, 8, 1.0, 591);
  const auto b = random_csr<int, double>(8, 8, 1.0, 592);
  const auto m = random_csr<int, double>(8, 8, 0.5, 593);

  Kernel::Scratch scratch;
  Kernel kernel(a, b, m, /*complemented=*/true, &scratch);
  std::vector<int> out_cols(8);
  std::vector<double> out_vals(8);
  for (int i = 0; i < 8; ++i) {
    const int cnt = kernel.numeric_row(i, out_cols.data(), out_vals.data());
    EXPECT_EQ(cnt, 8 - m.row_nnz(i)) << "row " << i;  // dense product
    EXPECT_LE(scratch.slots.size(), 32u) << "row " << i;
  }
  // And the clamped table still produces the exact complemented result.
  MaskedSpgemmOptions opt;
  opt.algorithm = MaskedAlgorithm::kHash;
  opt.mask_kind = MaskKind::kComplement;
  opt.phase = MaskedPhase::kTwoPhase;
  EXPECT_TRUE(csr_equal(
      baseline_saxpy<SR>(a, b, m, MaskKind::kComplement),
      masked_multiply<SR>(a, b, m, opt)));
}

// ---------------------------------------------------------------------------
// Shared valued-mask filter helper
// ---------------------------------------------------------------------------

TEST(DropExplicitZeros, MatchesSelectAndKeepsShape) {
  auto m = random_csr<int, double>(40, 30, 0.3, 601);
  for (std::size_t p = 0; p < m.values.size(); p += 3) m.values[p] = 0.0;
  const auto filtered = drop_explicit_zeros(m);
  const auto expected =
      select(m, [](int, int, const double& v) { return v != 0.0; });
  EXPECT_TRUE(csr_equal(expected, filtered));
  EXPECT_EQ(filtered.nrows, m.nrows);
  EXPECT_EQ(filtered.ncols, m.ncols);
  EXPECT_LT(filtered.nnz(), m.nnz());
}

// ---------------------------------------------------------------------------
// Batched (mask, row) partition
// ---------------------------------------------------------------------------

TEST(BatchPartition, CoversEveryIncludedItemExactlyOnce) {
  const std::vector<std::int64_t> flops = {0, 5, 1000, 3, 0, 77, 2, 19};
  const int n_masks = 3;
  const auto included = [](std::int32_t q, int i) {
    return q != 1 || i % 2 == 0;  // mask 1 admits even rows only
  };
  for (int lists : {1, 2, 4, 7}) {
    const auto part =
        build_batch_partition<int>(flops, n_masks, included, lists);
    EXPECT_EQ(part.lists(), lists);
    std::vector<std::vector<int>> seen(
        n_masks, std::vector<int>(flops.size(), 0));
    for (int l = 0; l < part.lists(); ++l) {
      std::int32_t prev_mask = -1;
      int prev_row = -1;
      for (const auto& item : part.list(l)) {
        ++seen[static_cast<std::size_t>(item.mask)]
              [static_cast<std::size_t>(item.row)];
        // Sorted by (mask, row) within a list: one kernel per run.
        EXPECT_TRUE(item.mask > prev_mask ||
                    (item.mask == prev_mask && item.row > prev_row));
        prev_mask = item.mask;
        prev_row = item.row;
      }
    }
    for (int q = 0; q < n_masks; ++q) {
      for (std::size_t i = 0; i < flops.size(); ++i) {
        const int expect =
            (flops[i] > 0 && included(q, static_cast<int>(i))) ? 1 : 0;
        EXPECT_EQ(seen[static_cast<std::size_t>(q)][i], expect)
            << "mask " << q << " row " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// App-level batch paths
// ---------------------------------------------------------------------------

TEST(AppBatch, TriangleSupportBatchMatchesSequential) {
  const auto g =
      remove_diagonal(symmetrize(erdos_renyi<int, double>(120, 8.0, 611)));
  const auto input = tricount_prepare(g);
  std::vector<CsrMatrix<int, double>> mask_store;
  mask_store.push_back(input.l);  // full mask: the total triangle count
  mask_store.push_back(tril(random_csr<int, double>(
      input.l.nrows, input.l.ncols, 0.1, 612)));
  mask_store.emplace_back(input.l.nrows, input.l.ncols);  // empty
  std::vector<const CsrMatrix<int, double>*> masks;
  for (const auto& m : mask_store) masks.push_back(&m);

  for (Scheme s : {Scheme::kMsa1P, Scheme::kHash2P}) {
    SCOPED_TRACE(scheme_name(s));
    const auto sequential = triangle_support_batch(input, masks, s);
    ExecutionContext ctx;
    const auto batched = triangle_support_batch(input, masks, s, &ctx);
    EXPECT_EQ(sequential, batched);
    EXPECT_EQ(batched[0], triangle_count(input, s).triangles);
    EXPECT_EQ(batched[2], 0);
    EXPECT_EQ(ctx.cache_stats().batch_calls, 1u);
  }
}

TEST(AppBatch, FrontierExpansionBatchMatchesSequential) {
  const auto adj =
      remove_diagonal(symmetrize(erdos_renyi<int, double>(100, 6.0, 621)));
  const auto frontier = random_csr<int, double>(8, 100, 0.05, 622);
  std::vector<CsrMatrix<int, double>> mask_store;
  for (std::uint64_t s = 0; s < 4; ++s) {
    mask_store.push_back(random_csr<int, double>(8, 100, 0.2, 630 + s));
  }
  std::vector<const CsrMatrix<int, double>*> masks;
  for (const auto& m : mask_store) masks.push_back(&m);

  for (Scheme s : {Scheme::kMsa2P, Scheme::kHash1P}) {
    SCOPED_TRACE(scheme_name(s));
    const auto sequential = frontier_expansion_batch(frontier, adj, masks, s);
    ExecutionContext ctx;
    const auto batched =
        frontier_expansion_batch(frontier, adj, masks, s, &ctx);
    ASSERT_EQ(sequential.size(), batched.size());
    for (std::size_t q = 0; q < masks.size(); ++q) {
      EXPECT_TRUE(csr_equal(sequential[q], batched[q])) << "mask " << q;
    }
  }
  EXPECT_THROW(
      frontier_expansion_batch(frontier, adj, masks, Scheme::kMca1P),
      invalid_argument_error);
}

}  // namespace
