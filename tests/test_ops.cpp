// Unit tests for the GraphBLAS-style operations in matrix/ops.hpp.
#include <gtest/gtest.h>

#include "matrix/dense.hpp"
#include "matrix/ops.hpp"
#include "test_support.hpp"

namespace msp {
namespace {

using IT = int;
using VT = double;
using msp::testing::csr_equal;
using msp::testing::random_csr;

TEST(EwiseMult, PatternIsIntersection) {
  const auto a = random_csr<IT, VT>(20, 20, 0.3, 1);
  const auto b = random_csr<IT, VT>(20, 20, 0.3, 2);
  const auto c = ewise_mult(a, b);
  const auto da = to_dense(a);
  const auto db = to_dense(b);
  const auto dc = to_dense(c);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 20; ++j) {
      EXPECT_EQ(dc.has(i, j), da.has(i, j) && db.has(i, j));
      if (dc.has(i, j)) {
        EXPECT_DOUBLE_EQ(dc.at(i, j), da.at(i, j) * db.at(i, j));
      }
    }
  }
}

TEST(EwiseMult, CustomCombiner) {
  const auto a = random_csr<IT, VT>(10, 10, 0.4, 3);
  const auto c = ewise_mult(a, a, [](VT x, VT) { return x; });
  EXPECT_TRUE(csr_equal(a, c));
}

TEST(EwiseMult, DimensionMismatchThrows) {
  const auto a = random_csr<IT, VT>(4, 4, 0.5, 1);
  const auto b = random_csr<IT, VT>(4, 5, 0.5, 2);
  EXPECT_THROW(ewise_mult(a, b), invalid_argument_error);
}

TEST(EwiseAdd, PatternIsUnion) {
  const auto a = random_csr<IT, VT>(20, 20, 0.2, 4);
  const auto b = random_csr<IT, VT>(20, 20, 0.2, 5);
  const auto c = ewise_add(a, b);
  const auto da = to_dense(a);
  const auto db = to_dense(b);
  const auto dc = to_dense(c);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 20; ++j) {
      EXPECT_EQ(dc.has(i, j), da.has(i, j) || db.has(i, j));
      if (dc.has(i, j)) {
        const VT expected = (da.has(i, j) ? da.at(i, j) : 0.0) +
                            (db.has(i, j) ? db.at(i, j) : 0.0);
        EXPECT_DOUBLE_EQ(dc.at(i, j), expected);
      }
    }
  }
}

TEST(EwiseAdd, WithEmptyIsIdentity) {
  const auto a = random_csr<IT, VT>(8, 12, 0.3, 6);
  const CsrMatrix<IT, VT> empty(8, 12);
  EXPECT_TRUE(csr_equal(a, ewise_add(a, empty)));
  EXPECT_TRUE(csr_equal(a, ewise_add(empty, a)));
}

TEST(Apply, ScalesValuesKeepsPattern) {
  const auto a = random_csr<IT, VT>(10, 10, 0.3, 7);
  const auto b = apply(a, [](VT v) { return 2 * v; });
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.colids, b.colids);
  for (std::size_t p = 0; p < a.nnz(); ++p) {
    EXPECT_DOUBLE_EQ(b.values[p], 2 * a.values[p]);
  }
}

TEST(Select, ThresholdKeepsMatchingEntries) {
  const auto a = random_csr<IT, VT>(15, 15, 0.4, 8);
  const auto big = select(a, [](IT, IT, const VT& v) { return v >= 5.0; });
  EXPECT_TRUE(big.check_structure());
  for (std::size_t p = 0; p < big.nnz(); ++p) EXPECT_GE(big.values[p], 5.0);
  const auto small = select(a, [](IT, IT, const VT& v) { return v < 5.0; });
  EXPECT_EQ(big.nnz() + small.nnz(), a.nnz());
}

TEST(TrilTriu, PartitionOffDiagonal) {
  const auto a = random_csr<IT, VT>(12, 12, 0.5, 9);
  const auto lower = tril(a);
  const auto upper = triu(a);
  const auto diagonal =
      select(a, [](IT i, IT j, const VT&) { return i == j; });
  EXPECT_EQ(lower.nnz() + upper.nnz() + diagonal.nnz(), a.nnz());
  for (IT i = 0; i < 12; ++i) {
    for (IT p = lower.rowptr[i]; p < lower.rowptr[i + 1]; ++p) {
      EXPECT_LT(lower.colids[p], i);
    }
    for (IT p = upper.rowptr[i]; p < upper.rowptr[i + 1]; ++p) {
      EXPECT_GT(upper.colids[p], i);
    }
  }
}

TEST(RemoveDiagonal, DropsOnlyDiagonal) {
  const auto a = random_csr<IT, VT>(12, 12, 0.5, 10);
  const auto nd = remove_diagonal(a);
  const auto diagonal =
      select(a, [](IT i, IT j, const VT&) { return i == j; });
  EXPECT_EQ(nd.nnz() + diagonal.nnz(), a.nnz());
  for (IT i = 0; i < 12; ++i) {
    for (IT p = nd.rowptr[i]; p < nd.rowptr[i + 1]; ++p) {
      EXPECT_NE(nd.colids[p], i);
    }
  }
}

TEST(ReduceSum, MatchesSerialSum) {
  const auto a = random_csr<IT, VT>(50, 50, 0.2, 11);
  VT expected = 0;
  for (VT v : a.values) expected += v;
  EXPECT_DOUBLE_EQ(reduce_sum(a), expected);
}

TEST(ReduceSum, EmptyIsZero) {
  const CsrMatrix<IT, VT> a(5, 5);
  EXPECT_DOUBLE_EQ(reduce_sum(a), 0.0);
}

TEST(ToPattern, AllValuesBecomeOne) {
  const auto a = random_csr<IT, VT>(10, 10, 0.4, 12);
  const auto p = to_pattern(a);
  EXPECT_EQ(p.colids, a.colids);
  for (VT v : p.values) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Symmetrize, ResultHasSymmetricPattern) {
  const auto a = random_csr<IT, VT>(20, 20, 0.15, 13);
  const auto s = symmetrize(a);
  const auto d = to_dense(s);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 20; ++j) {
      EXPECT_EQ(d.has(i, j), d.has(j, i));
    }
  }
}

TEST(Symmetrize, RectangularThrows) {
  const auto a = random_csr<IT, VT>(4, 5, 0.5, 14);
  EXPECT_THROW(symmetrize(a), invalid_argument_error);
}

TEST(RowDegrees, MatchRowNnz) {
  const auto a = random_csr<IT, VT>(30, 30, 0.2, 15);
  const auto deg = row_degrees(a);
  for (IT i = 0; i < 30; ++i) EXPECT_EQ(deg[i], a.row_nnz(i));
}

TEST(PermuteSymmetric, IdentityPermutation) {
  const auto a = random_csr<IT, VT>(10, 10, 0.3, 16);
  std::vector<IT> perm(10);
  std::iota(perm.begin(), perm.end(), 0);
  EXPECT_TRUE(csr_equal(a, permute_symmetric(a, perm)));
}

TEST(PermuteSymmetric, ReversalPreservesEntries) {
  const auto a = random_csr<IT, VT>(10, 10, 0.3, 17);
  std::vector<IT> perm(10);
  for (IT i = 0; i < 10; ++i) perm[i] = 9 - i;
  const auto p = permute_symmetric(a, perm);
  EXPECT_EQ(p.nnz(), a.nnz());
  const auto da = to_dense(a);
  const auto dp = to_dense(p);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      EXPECT_EQ(dp.has(i, j), da.has(9 - i, 9 - j));
      if (dp.has(i, j)) {
        EXPECT_DOUBLE_EQ(dp.at(i, j), da.at(9 - i, 9 - j));
      }
    }
  }
}

TEST(PermuteSymmetric, InvalidPermutationThrows) {
  const auto a = random_csr<IT, VT>(4, 4, 0.5, 18);
  EXPECT_THROW(permute_symmetric(a, {0, 1, 2}), invalid_argument_error);
  EXPECT_THROW(permute_symmetric(a, {0, 1, 2, 2}), invalid_argument_error);
  EXPECT_THROW(permute_symmetric(a, {0, 1, 2, 9}), invalid_argument_error);
}

TEST(DegreeOrder, NonIncreasingDegrees) {
  const auto a = random_csr<IT, VT>(40, 40, 0.2, 19);
  const auto perm = degree_order(a);
  const auto deg = row_degrees(a);
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_GE(deg[perm[i - 1]], deg[perm[i]]);
  }
}

TEST(DegreeOrder, RelabeledGraphHasNonIncreasingRowNnz) {
  const auto a = symmetrize(random_csr<IT, VT>(40, 40, 0.1, 20));
  const auto p = permute_symmetric(a, degree_order(a));
  for (IT i = 1; i < p.nrows; ++i) {
    EXPECT_GE(p.row_nnz(i - 1), p.row_nnz(i));
  }
}

}  // namespace
}  // namespace msp
