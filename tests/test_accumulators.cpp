// Kernel-level unit tests: the accumulator state machines (paper Figs. 3/5)
// exercised directly through the row-kernel interface on handcrafted
// matrices, plus adversarial stress (hash collisions, long probe chains,
// repeated reuse across rows) that whole-matrix tests are unlikely to hit.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/hash_accumulator.hpp"
#include "core/heap_kernel.hpp"
#include "core/inner_kernel.hpp"
#include "core/mca_accumulator.hpp"
#include "core/masked_spgemm.hpp"
#include "core/msa_accumulator.hpp"
#include "matrix/convert.hpp"
#include "matrix/dense.hpp"
#include "semiring/semiring.hpp"
#include "test_support.hpp"

namespace msp {
namespace {

using IT = int;
using VT = double;
using SR = PlusTimes<VT>;
using msp::testing::random_csr;

struct Fixture {
  CsrMatrix<IT, VT> a;
  CsrMatrix<IT, VT> b;
  CsrMatrix<IT, VT> m;
};

/// u = row 0 of A selects three rows of B that all hit column 2, so the
/// accumulator must take ALLOWED → SET → SET (+ accumulate) transitions.
Fixture accumulation_fixture() {
  Fixture f;
  CooMatrix<IT, VT> a(1, 4);
  a.push(0, 0, 2.0);
  a.push(0, 1, 3.0);
  a.push(0, 3, 5.0);
  f.a = coo_to_csr(std::move(a));
  CooMatrix<IT, VT> b(4, 5);
  b.push(0, 2, 1.0);  // 2*1
  b.push(1, 2, 1.0);  // 3*1
  b.push(3, 2, 1.0);  // 5*1  -> (0,2) = 10
  b.push(0, 0, 7.0);  // (0,0) = 14, masked out
  b.push(1, 4, 1.0);  // (0,4) = 3, allowed
  f.b = coo_to_csr(std::move(b));
  CooMatrix<IT, VT> m(1, 5);
  m.push(0, 1, 1.0);  // allowed but never produced
  m.push(0, 2, 1.0);
  m.push(0, 4, 1.0);
  f.m = coo_to_csr(std::move(m));
  return f;
}

template <class Kernel>
void check_accumulation_fixture() {
  const Fixture f = accumulation_fixture();
  Kernel kernel(f.a, f.b, f.m, /*complemented=*/false);
  std::vector<IT> cols(8);
  std::vector<VT> vals(8);
  const IT cnt = kernel.numeric_row(0, cols.data(), vals.data());
  ASSERT_EQ(cnt, 2);
  EXPECT_EQ(cols[0], 2);
  EXPECT_DOUBLE_EQ(vals[0], 10.0);  // three inserts accumulated
  EXPECT_EQ(cols[1], 4);
  EXPECT_DOUBLE_EQ(vals[1], 3.0);
  // Symbolic must agree and kernel must be reusable for the same row.
  EXPECT_EQ(kernel.symbolic_row(0), 2);
  const IT cnt2 = kernel.numeric_row(0, cols.data(), vals.data());
  EXPECT_EQ(cnt2, 2);
  EXPECT_DOUBLE_EQ(vals[0], 10.0);
}

TEST(MsaKernel, StateMachineAccumulates) {
  check_accumulation_fixture<MsaKernel<SR, IT, VT, VT>>();
}
TEST(HashKernel, StateMachineAccumulates) {
  check_accumulation_fixture<HashKernel<SR, IT, VT, VT>>();
}
TEST(McaKernel, StateMachineAccumulates) {
  check_accumulation_fixture<McaKernel<SR, IT, VT, VT>>();
}
TEST(HeapKernel, StateMachineAccumulates) {
  check_accumulation_fixture<HeapKernel<SR, IT, VT, VT>>();
}

TEST(InnerKernel, StateMachineAccumulates) {
  const Fixture f = accumulation_fixture();
  const CscMatrix<IT, VT> b_csc = csr_to_csc(f.b);
  InnerKernel<SR, IT, VT, VT> kernel(f.a, b_csc, f.m, false);
  std::vector<IT> cols(8);
  std::vector<VT> vals(8);
  const IT cnt = kernel.numeric_row(0, cols.data(), vals.data());
  ASSERT_EQ(cnt, 2);
  EXPECT_DOUBLE_EQ(vals[0], 10.0);
  EXPECT_DOUBLE_EQ(vals[1], 3.0);
  EXPECT_EQ(kernel.symbolic_row(0), 2);
}

/// Kernels must fully reset between rows: row 1 is empty in A, so even
/// though the mask admits everything, no stale state may leak from row 0.
template <class Kernel>
void check_reset_between_rows() {
  CooMatrix<IT, VT> a(2, 2);
  a.push(0, 0, 1.0);
  auto am = coo_to_csr(std::move(a));
  CooMatrix<IT, VT> b(2, 2);
  b.push(0, 0, 1.0);
  b.push(0, 1, 1.0);
  auto bm = coo_to_csr(std::move(b));
  CooMatrix<IT, VT> m(2, 2);
  m.push(0, 0, 1.0);
  m.push(0, 1, 1.0);
  m.push(1, 0, 1.0);
  m.push(1, 1, 1.0);
  auto mm = coo_to_csr(std::move(m));
  Kernel kernel(am, bm, mm, false);
  std::vector<IT> cols(4);
  std::vector<VT> vals(4);
  EXPECT_EQ(kernel.numeric_row(0, cols.data(), vals.data()), 2);
  EXPECT_EQ(kernel.numeric_row(1, cols.data(), vals.data()), 0);
  EXPECT_EQ(kernel.symbolic_row(1), 0);
}

TEST(MsaKernel, ResetsBetweenRows) {
  check_reset_between_rows<MsaKernel<SR, IT, VT, VT>>();
}
TEST(HashKernel, ResetsBetweenRows) {
  check_reset_between_rows<HashKernel<SR, IT, VT, VT>>();
}
TEST(McaKernel, ResetsBetweenRows) {
  check_reset_between_rows<McaKernel<SR, IT, VT, VT>>();
}
TEST(HeapKernel, ResetsBetweenRows) {
  check_reset_between_rows<HeapKernel<SR, IT, VT, VT>>();
}

/// Hash stress: mask keys chosen to collide heavily under multiplicative
/// hashing into a small table (all keys share low-order structure), with a
/// mask large enough to force several table growths across rows.
TEST(HashKernel, CollisionAndGrowthStress) {
  const IT n = 4096;
  const IT stride = 64;  // keys 0, 64, 128, ... stress one hash bucket range
  CooMatrix<IT, VT> m(3, n);
  for (IT j = 0; j < n; j += stride) {
    m.push(0, j, 1.0);
    m.push(2, j, 1.0);
  }
  m.push(1, 0, 1.0);  // tiny row between big ones: growth then shrink usage
  auto mm = coo_to_csr(std::move(m));
  CooMatrix<IT, VT> a(3, 1);
  for (IT i = 0; i < 3; ++i) a.push(i, 0, 1.0);
  auto am = coo_to_csr(std::move(a));
  CooMatrix<IT, VT> b(1, n);
  for (IT j = 0; j < n; j += 2 * stride) b.push(0, j, 2.0);
  auto bm = coo_to_csr(std::move(b));

  HashKernel<SR, IT, VT, VT> kernel(am, bm, mm, false);
  std::vector<IT> cols(static_cast<std::size_t>(n));
  std::vector<VT> vals(static_cast<std::size_t>(n));
  const IT c0 = kernel.numeric_row(0, cols.data(), vals.data());
  EXPECT_EQ(c0, n / (2 * stride));
  for (IT p = 0; p < c0; ++p) {
    EXPECT_EQ(cols[p] % (2 * stride), 0);
    EXPECT_DOUBLE_EQ(vals[p], 2.0);
  }
  EXPECT_EQ(kernel.numeric_row(1, cols.data(), vals.data()), 1);
  EXPECT_EQ(kernel.numeric_row(2, cols.data(), vals.data()), n / (2 * stride));
}

/// The heap kernel's NInspect settings are performance knobs only: results
/// must be identical for 0, 1, and ∞ on random inputs.
TEST(HeapKernel, NInspectSettingsAgree) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const auto a = random_csr<IT, VT>(24, 24, 0.2, seed);
    const auto b = random_csr<IT, VT>(24, 24, 0.2, seed + 50);
    const auto m = random_csr<IT, VT>(24, 24, 0.3, seed + 99);
    const auto expected = reference_masked_multiply<SR>(a, b, m, false);
    for (long inspect : {0L, 1L, 2L, 7L, kInspectAll}) {
      MaskedSpgemmOptions opt;
      opt.algorithm = MaskedAlgorithm::kHeap;
      opt.heap_n_inspect = inspect;
      const auto actual = masked_multiply<SR>(a, b, m, opt);
      EXPECT_TRUE(msp::testing::csr_equal(expected, actual))
          << "NInspect=" << inspect << " seed " << seed;
    }
  }
}

/// Complemented MSA/Hash: epoch-stamp reuse across many rows must never
/// leak state (a row count larger than 2^8 would expose 8-bit epochs, and
/// alternating full/empty rows exposes missed resets).
template <class Kernel>
void check_complement_epoch_reuse() {
  const IT n = 16;
  const IT rows = 600;
  CooMatrix<IT, VT> a(rows, 2);
  CooMatrix<IT, VT> m(rows, n);
  for (IT i = 0; i < rows; ++i) {
    if (i % 2 == 0) a.push(i, 0, 1.0);
    // Mask forbids even columns on every row.
    for (IT j = 0; j < n; j += 2) m.push(i, j, 1.0);
  }
  auto am = coo_to_csr(std::move(a));
  CooMatrix<IT, VT> b(2, n);
  for (IT j = 0; j < n; ++j) b.push(0, j, 1.0);
  auto bm = coo_to_csr(std::move(b));
  auto mm = coo_to_csr(std::move(m));
  Kernel kernel(am, bm, mm, /*complemented=*/true);
  std::vector<IT> cols(static_cast<std::size_t>(n));
  std::vector<VT> vals(static_cast<std::size_t>(n));
  for (IT i = 0; i < rows; ++i) {
    const IT cnt = kernel.numeric_row(i, cols.data(), vals.data());
    if (i % 2 == 0) {
      ASSERT_EQ(cnt, n / 2) << "row " << i;
      for (IT p = 0; p < cnt; ++p) EXPECT_EQ(cols[p] % 2, 1);
    } else {
      ASSERT_EQ(cnt, 0) << "row " << i;
    }
  }
}

TEST(MsaKernel, ComplementEpochReuse) {
  check_complement_epoch_reuse<MsaKernel<SR, IT, VT, VT>>();
}
TEST(HashKernel, ComplementEpochReuse) {
  check_complement_epoch_reuse<HashKernel<SR, IT, VT, VT>>();
}

TEST(McaKernel, RejectsComplement) {
  const auto a = random_csr<IT, VT>(4, 4, 0.5, 1);
  EXPECT_THROW((McaKernel<SR, IT, VT, VT>(a, a, a, true)),
               invalid_argument_error);
}

/// Lazy insert contract (paper §5.1): products whose keys are masked out
/// must be discarded — with the mask filtering applied before the value is
/// used, a semiring whose multiply would trap on masked-out pairs is safe.
TEST(MaskedKernels, MaskedOutProductsAreDiscarded) {
  // B contains a "poison" value at a masked-out column; PlusTimes would
  // propagate a NaN into the output if the kernel consumed it.
  CooMatrix<IT, VT> a(1, 1);
  a.push(0, 0, 1.0);
  auto am = coo_to_csr(std::move(a));
  CooMatrix<IT, VT> b(1, 3);
  b.push(0, 0, 1.0);
  b.push(0, 1, std::numeric_limits<VT>::quiet_NaN());
  b.push(0, 2, 3.0);
  auto bm = coo_to_csr(std::move(b));
  CooMatrix<IT, VT> m(1, 3);
  m.push(0, 0, 1.0);
  m.push(0, 2, 1.0);
  auto mm = coo_to_csr(std::move(m));
  for (MaskedAlgorithm algo :
       {MaskedAlgorithm::kMsa, MaskedAlgorithm::kHash, MaskedAlgorithm::kMca,
        MaskedAlgorithm::kHeap, MaskedAlgorithm::kHeapDot,
        MaskedAlgorithm::kInner}) {
    MaskedSpgemmOptions opt;
    opt.algorithm = algo;
    const auto c = masked_multiply<SR>(am, bm, mm, opt);
    ASSERT_EQ(c.nnz(), 2u) << algorithm_name(algo);
    EXPECT_DOUBLE_EQ(c.values[0], 1.0) << algorithm_name(algo);
    EXPECT_DOUBLE_EQ(c.values[1], 3.0) << algorithm_name(algo);
    for (VT v : c.values) EXPECT_FALSE(std::isnan(v)) << algorithm_name(algo);
  }
}

}  // namespace
}  // namespace msp
