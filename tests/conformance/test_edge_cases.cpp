// Conformance edge-case pack (ISSUE 1 satellite): degenerate shapes and
// adversarial masks swept across every execution configuration. Covers 0x0
// and 1x1 matrices, a mask whose stored values are all explicit zeros, a
// mask strictly denser than the product, and argument aliasing
// (masked_multiply(a, a, a)).
#include <gtest/gtest.h>

#include "conformance_support.hpp"
#include "test_support.hpp"

namespace msp {
namespace {

using SR = PlusTimes<double>;
using msp::conformance::Config;
using msp::conformance::all_configs;
using msp::conformance::expected_result;
using msp::conformance::run_config;
using msp::testing::csr_equal;

void sweep_all_configs(const CsrMatrix<int, double>& a,
                       const CsrMatrix<int, double>& b,
                       const CsrMatrix<int, double>& m, const char* label) {
  for (const Config& cfg : all_configs()) {
    const auto expected =
        expected_result<SR>(a, b, m, cfg.kind, cfg.semantics);
    const auto actual = run_config<SR>(cfg, a, b, m);
    EXPECT_TRUE(csr_equal(expected, actual)) << cfg.name() << " on " << label;
  }
}

TEST(ConformanceEdge, ZeroByZero) {
  const CsrMatrix<int, double> z(0, 0);
  sweep_all_configs(z, z, z, "0x0");
}

TEST(ConformanceEdge, OneByOne) {
  const CsrMatrix<int, double> one(1, 1, {0, 1}, {0}, {2.5});
  const CsrMatrix<int, double> empty1(1, 1);
  sweep_all_configs(one, one, one, "1x1 full");
  sweep_all_configs(one, one, empty1, "1x1 empty mask");
  sweep_all_configs(empty1, empty1, one, "1x1 empty operands");
}

TEST(ConformanceEdge, AllZeroValuedMask) {
  // Every stored mask value is an explicit zero: structural semantics keep
  // all positions, valued semantics admit none.
  const auto a = msp::testing::random_csr<int, double>(14, 14, 0.35, 81);
  const auto b = msp::testing::random_csr<int, double>(14, 14, 0.35, 82);
  auto m = msp::testing::random_csr<int, double>(14, 14, 0.5, 83);
  for (auto& v : m.values) v = 0.0;
  sweep_all_configs(a, b, m, "all-zero mask");

  // Directly pin the two interpretations' divergence.
  MaskedSpgemmOptions valued;
  valued.mask_semantics = MaskSemantics::kValued;
  EXPECT_EQ(masked_multiply<SR>(a, b, m, valued).nnz(), 0u);
  MaskedSpgemmOptions structural;
  const auto kept = masked_multiply<SR>(a, b, m, structural);
  EXPECT_TRUE(csr_equal(reference_masked_multiply<SR>(a, b, m, false), kept));
}

TEST(ConformanceEdge, MaskDenserThanProduct) {
  // Sparse operands under a fully dense mask: the mask admits far more
  // positions than the product populates, so the one-phase nnz(M) bound is
  // maximally loose and the compaction path is fully exercised.
  const auto a = msp::testing::random_csr<int, double>(12, 12, 0.1, 91);
  const auto b = msp::testing::random_csr<int, double>(12, 12, 0.1, 92);
  const auto m = msp::testing::random_csr<int, double>(12, 12, 1.0, 93);
  sweep_all_configs(a, b, m, "dense mask over sparse product");
}

TEST(ConformanceEdge, MaskAliasesInputs) {
  // masked_multiply(a, a, a): the mask and both operands are the same
  // object. Kernels must not be confused by aliased storage.
  const auto a = msp::testing::random_csr<int, double>(16, 16, 0.3, 101);
  sweep_all_configs(a, a, a, "self-aliased");

  const auto expected = reference_masked_multiply<SR>(a, a, a, false);
  for (Scheme s : all_schemes()) {
    EXPECT_TRUE(csr_equal(expected, run_scheme<SR>(s, a, a, a)))
        << scheme_name(s);
  }
}

TEST(ConformanceEdge, EmptyRowsAndColumns) {
  // A matrix whose first and last rows/cols are entirely empty, multiplied
  // in a rectangular chain; exercises rowptr handling at the boundaries.
  CsrMatrix<int, double> a(5, 7);
  a.colids = {1, 3, 2};
  a.values = {1.0, 2.0, 3.0};
  a.rowptr = {0, 0, 2, 2, 3, 3};
  ASSERT_TRUE(a.check_structure());
  const auto b = msp::testing::random_csr<int, double>(7, 4, 0.4, 111);
  const auto m = msp::testing::random_csr<int, double>(5, 4, 0.6, 112);
  sweep_all_configs(a, b, m, "empty boundary rows");
}

}  // namespace
}  // namespace msp
