// Shared machinery for the cross-kernel conformance suite: the enumerated
// execution configurations (Scheme x mask kind x mask semantics) and the
// generated matrix corpus every configuration is swept over. The expected
// result for every case is pinned to the core/baseline.hpp SAXPY reference
// (itself cross-checked against the dense oracle in the anchor test).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/dispatch.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "matrix/dense.hpp"
#include "matrix/ops.hpp"
#include "test_support.hpp"

namespace msp::conformance {

/// One execution configuration of the sweep. The cross product covers every
/// Scheme (all accumulators: MSA, MCA, hash, heap, heap-dot, inner, plus the
/// two SS-style baselines), both mask kinds (complement skipped where the
/// scheme cannot support it), and both GraphBLAS mask semantics.
struct Config {
  Scheme scheme = Scheme::kMsa1P;
  MaskKind kind = MaskKind::kMask;
  MaskSemantics semantics = MaskSemantics::kStructural;

  [[nodiscard]] std::string name() const {
    std::string n{scheme_name(scheme)};
    for (char& c : n) {
      if (c == ':' || c == '-') c = '_';
    }
    n += kind == MaskKind::kComplement ? "_Comp" : "_Mask";
    n += semantics == MaskSemantics::kValued ? "_Valued" : "_Structural";
    return n;
  }
};

/// GoogleTest value printer, so CTest ids show the config name instead of
/// a raw byte dump.
inline void PrintTo(const Config& cfg, std::ostream* os) {
  *os << cfg.name();
}

inline std::vector<Config> all_configs() {
  std::vector<Config> out;
  for (Scheme s : all_schemes()) {
    for (MaskKind kind : {MaskKind::kMask, MaskKind::kComplement}) {
      if (kind == MaskKind::kComplement && !scheme_supports_complement(s)) {
        continue;
      }
      for (MaskSemantics sem :
           {MaskSemantics::kStructural, MaskSemantics::kValued}) {
        out.push_back({s, kind, sem});
      }
    }
  }
  return out;
}

/// One (A, B, M) problem instance of the corpus.
template <class IT, class VT = double>
struct Case {
  std::string name;
  CsrMatrix<IT, VT> a;
  CsrMatrix<IT, VT> b;
  CsrMatrix<IT, VT> m;
};

/// Plant explicit zeros on a deterministic subset of stored entries so the
/// structural and valued interpretations genuinely diverge.
template <class IT, class VT>
CsrMatrix<IT, VT> with_explicit_zeros(CsrMatrix<IT, VT> m) {
  for (std::size_t p = 0; p < m.values.size(); ++p) {
    if (p % 3 == 0) m.values[p] = VT{};
  }
  return m;
}

template <class IT, class VT = double>
CsrMatrix<IT, VT> diagonal_matrix(IT n, VT start = VT{2}) {
  CsrMatrix<IT, VT> d(n, n);
  for (IT i = 0; i < n; ++i) {
    d.colids.push_back(i);
    d.values.push_back(start + static_cast<VT>(i % 7));
    d.rowptr[static_cast<std::size_t>(i) + 1] = i + 1;
  }
  return d;
}

/// The conformance corpus (ISSUE 1): empty, dense, diagonal, rectangular,
/// duplicate-free Erdos-Renyi, and RMAT instances. Sizes are small enough
/// for the dense/baseline references yet large enough to exercise every
/// accumulator's collision/merge paths. All masks carry explicit zeros so
/// the valued-semantics leg of the sweep is non-trivial.
template <class IT>
std::vector<Case<IT>> corpus() {
  using VT = double;
  using msp::testing::random_csr;
  std::vector<Case<IT>> out;

  // Empty operands under a nonempty mask: every kernel must produce an
  // empty, well-formed result.
  out.push_back({"empty",
                 CsrMatrix<IT, VT>(IT{8}, IT{8}),
                 CsrMatrix<IT, VT>(IT{8}, IT{8}),
                 with_explicit_zeros(random_csr<IT, VT>(8, 8, 0.5, 11))});

  // Fully dense operands and mask: maximal accumulator occupancy.
  out.push_back({"dense", random_csr<IT, VT>(12, 12, 1.0, 21),
                 random_csr<IT, VT>(12, 12, 1.0, 22),
                 with_explicit_zeros(random_csr<IT, VT>(12, 12, 1.0, 23))});

  // Diagonal A and B (product is diagonal) under a scattered mask.
  out.push_back({"diagonal", diagonal_matrix<IT>(IT{16}),
                 diagonal_matrix<IT>(IT{16}, VT{3}),
                 with_explicit_zeros(random_csr<IT, VT>(16, 16, 0.4, 31))});

  // Rectangular shapes: distinct nrows/ncols/inner dimension.
  out.push_back({"rectangular", random_csr<IT, VT>(9, 13, 0.35, 41),
                 random_csr<IT, VT>(13, 7, 0.35, 42),
                 with_explicit_zeros(random_csr<IT, VT>(9, 7, 0.45, 43))});

  // Duplicate-free Erdos-Renyi graph (paper Fig. 7 workload).
  out.push_back({"erdos_renyi", erdos_renyi<IT, VT>(IT{48}, 6.0, 51),
                 erdos_renyi<IT, VT>(IT{48}, 6.0, 52),
                 with_explicit_zeros(erdos_renyi<IT, VT>(IT{48}, 10.0, 53))});

  // RMAT graph (paper scale-sweep workload): skewed degrees, symmetrized,
  // dedup'd. Self-multiply under its own skewed mask.
  RmatParams rp;
  rp.seed = 61;
  const auto rmat = rmat_graph<IT, VT>(5, 4.0, rp);
  RmatParams rp_mask;
  rp_mask.seed = 62;
  out.push_back({"rmat", rmat, rmat,
                 with_explicit_zeros(rmat_graph<IT, VT>(5, 6.0, rp_mask))});

  return out;
}

// The valued-semantics reduction (drop explicitly stored zeros) comes from
// the library's shared helper, msp::drop_explicit_zeros (matrix/ops.hpp).

/// The pinned reference (core/baseline.hpp): SS:SAXPY-style unmasked
/// multiply + mask application, on the structurally-equivalent mask.
template <class SR, class IT, class VT>
CsrMatrix<IT, VT> expected_result(const CsrMatrix<IT, VT>& a,
                                  const CsrMatrix<IT, VT>& b,
                                  const CsrMatrix<IT, VT>& m, MaskKind kind,
                                  MaskSemantics semantics) {
  if (semantics == MaskSemantics::kValued) {
    return baseline_saxpy<SR>(a, b, drop_explicit_zeros(m), kind);
  }
  return baseline_saxpy<SR>(a, b, m, kind);
}

/// Run one configuration. The twelve paper schemes are executed through
/// masked_multiply (which honors mask semantics directly); the SS-style
/// baselines receive the semantics reduction explicitly, since their
/// signatures predate the MaskSemantics option.
template <class SR, class IT, class VT>
CsrMatrix<IT, VT> run_config(const Config& cfg, const CsrMatrix<IT, VT>& a,
                             const CsrMatrix<IT, VT>& b,
                             const CsrMatrix<IT, VT>& m) {
  MaskedSpgemmOptions opt;
  opt.mask_kind = cfg.kind;
  opt.mask_semantics = cfg.semantics;
  if (scheme_to_options(cfg.scheme, opt)) {
    return masked_multiply<SR>(a, b, m, opt);
  }
  const CsrMatrix<IT, VT> held =
      cfg.semantics == MaskSemantics::kValued ? drop_explicit_zeros(m) : m;
  if (cfg.scheme == Scheme::kSsDot) {
    return baseline_dot<SR>(a, b, held, cfg.kind);
  }
  return baseline_saxpy<SR>(a, b, held, cfg.kind);
}

}  // namespace msp::conformance
