// Cross-kernel conformance sweep (ISSUE 1 tentpole): every Scheme variant
// (all accumulators: MSA-1P/2P, MCA, hash, heap, heap-dot, inner, plus the
// SS-style baselines) x {regular, complemented mask} x {structural, valued
// semantics} x {int, int64_t indices}, over the generated corpus (empty,
// dense, diagonal, rectangular, Erdos-Renyi, RMAT), all pinned bit-exact to
// the core/baseline.hpp reference.
//
// Two GoogleTest axes:
//  * a value-parameterized suite (TEST_P) enumerates the execution configs
//    by name, so a failing kernel variant is identifiable from the test id;
//  * a typed suite (TYPED_TEST) re-runs the full cross product per index
//    type, proving the templates agree across IT = int and int64_t.
#include <gtest/gtest.h>

#include <cstdint>

#include "conformance_support.hpp"
#include "test_support.hpp"

namespace msp {
namespace {

using msp::conformance::Config;
using msp::conformance::all_configs;
using msp::conformance::corpus;
using msp::conformance::expected_result;
using msp::conformance::run_config;
using msp::testing::csr_equal;

// ---------------------------------------------------------------------------
// Anchor: the pinned baseline itself must agree with the dense oracle, so a
// bug in baseline_saxpy cannot silently validate matching kernel bugs.
// ---------------------------------------------------------------------------

TEST(ConformanceAnchor, BaselineMatchesDenseOracle) {
  using SR = PlusTimes<double>;
  for (const auto& c : corpus<int>()) {
    for (MaskKind kind : {MaskKind::kMask, MaskKind::kComplement}) {
      const bool complemented = kind == MaskKind::kComplement;
      const auto oracle =
          reference_masked_multiply<SR>(c.a, c.b, c.m, complemented);
      EXPECT_TRUE(csr_equal(oracle, baseline_saxpy<SR>(c.a, c.b, c.m, kind)))
          << c.name << (complemented ? " (complement)" : "");
    }
  }
}

// ---------------------------------------------------------------------------
// Value-parameterized sweep: one test per execution configuration.
// ---------------------------------------------------------------------------

class SchemeConformance : public ::testing::TestWithParam<Config> {};

TEST_P(SchemeConformance, MatchesBaselineOnFullCorpus) {
  using SR = PlusTimes<double>;
  const Config cfg = GetParam();
  for (const auto& c : corpus<int>()) {
    const auto expected =
        expected_result<SR>(c.a, c.b, c.m, cfg.kind, cfg.semantics);
    const auto actual = run_config<SR>(cfg, c.a, c.b, c.m);
    EXPECT_TRUE(csr_equal(expected, actual)) << cfg.name() << " on " << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SchemeConformance, ::testing::ValuesIn(all_configs()),
    [](const ::testing::TestParamInfo<Config>& info) {
      return info.param.name();
    });

// ---------------------------------------------------------------------------
// Typed sweep: the identical cross product per index type.
// ---------------------------------------------------------------------------

template <class IT>
class IndexTypeConformance : public ::testing::Test {};

using IndexTypes = ::testing::Types<int, std::int64_t>;
TYPED_TEST_SUITE(IndexTypeConformance, IndexTypes);

TYPED_TEST(IndexTypeConformance, AllConfigsMatchBaseline) {
  using IT = TypeParam;
  using SR = PlusTimes<double>;
  const auto cases = corpus<IT>();
  for (const Config& cfg : all_configs()) {
    for (const auto& c : cases) {
      const auto expected =
          expected_result<SR>(c.a, c.b, c.m, cfg.kind, cfg.semantics);
      const auto actual = run_config<SR>(cfg, c.a, c.b, c.m);
      EXPECT_TRUE(csr_equal(expected, actual))
          << cfg.name() << " on " << c.name;
    }
  }
}

// The MCA accumulator must keep rejecting complemented masks (the sweep
// above skips the combination; this pins the contract).
TYPED_TEST(IndexTypeConformance, McaRejectsComplement) {
  using IT = TypeParam;
  using SR = PlusTimes<double>;
  const auto a = msp::testing::random_csr<IT, double>(8, 8, 0.4, 71);
  MaskedSpgemmOptions opt;
  opt.algorithm = MaskedAlgorithm::kMca;
  opt.mask_kind = MaskKind::kComplement;
  EXPECT_THROW((masked_multiply<SR>(a, a, a, opt)), invalid_argument_error);
}

}  // namespace
}  // namespace msp
