// Structural vs valued mask semantics (GraphBLAS distinction): under
// structural interpretation every stored mask entry admits its position
// (the paper's setting); under valued interpretation explicitly stored
// zeros do not.
#include <gtest/gtest.h>

#include "core/masked_spgemm.hpp"
#include "matrix/dense.hpp"
#include "matrix/ops.hpp"
#include "test_support.hpp"

namespace msp {
namespace {

using IT = int;
using VT = double;
using SR = PlusTimes<VT>;
using msp::testing::csr_equal;
using msp::testing::random_csr;

/// A mask whose even-column entries are explicit zeros.
CsrMatrix<IT, VT> mask_with_explicit_zeros(IT n, double density,
                                           std::uint64_t seed) {
  auto m = random_csr<IT, VT>(n, n, density, seed);
  for (IT i = 0; i < n; ++i) {
    for (IT p = m.rowptr[i]; p < m.rowptr[i + 1]; ++p) {
      if (m.colids[p] % 2 == 0) m.values[p] = 0.0;
    }
  }
  return m;
}

TEST(MaskSemantics, StructuralIgnoresValues) {
  const auto a = random_csr<IT, VT>(24, 24, 0.3, 1);
  const auto m = mask_with_explicit_zeros(24, 0.4, 2);
  const auto expected = reference_masked_multiply<SR>(a, a, m, false);
  MaskedSpgemmOptions opt;  // structural by default
  EXPECT_TRUE(csr_equal(expected, masked_multiply<SR>(a, a, m, opt)));
}

TEST(MaskSemantics, ValuedDropsExplicitZeroPositions) {
  const auto a = random_csr<IT, VT>(24, 24, 0.3, 3);
  const auto m = mask_with_explicit_zeros(24, 0.4, 4);
  // Reference: valued semantics == structural semantics on the filtered mask.
  const auto filtered =
      msp::select(m, [](IT, IT, const VT& v) { return v != 0.0; });
  const auto expected = reference_masked_multiply<SR>(a, a, filtered, false);
  MaskedSpgemmOptions opt;
  opt.mask_semantics = MaskSemantics::kValued;
  const auto c = masked_multiply<SR>(a, a, m, opt);
  EXPECT_TRUE(csr_equal(expected, c));
  // Output must contain no entry at an explicit-zero mask position.
  const auto dm = to_dense(m);
  for (IT i = 0; i < c.nrows; ++i) {
    for (IT p = c.rowptr[i]; p < c.rowptr[i + 1]; ++p) {
      const std::size_t j = static_cast<std::size_t>(c.colids[p]);
      EXPECT_TRUE(dm.has(i, j));
      EXPECT_NE(dm.at(i, j), 0.0);
    }
  }
}

TEST(MaskSemantics, ValuedComplementAdmitsZeroPositions) {
  // Complemented valued mask: explicit zeros count as "not in the mask",
  // so their positions ARE admitted.
  const auto a = random_csr<IT, VT>(20, 20, 0.3, 5);
  const auto m = mask_with_explicit_zeros(20, 0.4, 6);
  const auto filtered =
      msp::select(m, [](IT, IT, const VT& v) { return v != 0.0; });
  const auto expected = reference_masked_multiply<SR>(a, a, filtered, true);
  MaskedSpgemmOptions opt;
  opt.mask_semantics = MaskSemantics::kValued;
  opt.mask_kind = MaskKind::kComplement;
  EXPECT_TRUE(csr_equal(expected, masked_multiply<SR>(a, a, m, opt)));
}

TEST(MaskSemantics, ValuedEqualsStructuralWithoutZeros) {
  // On a mask with no explicit zeros the two semantics must agree exactly,
  // for every algorithm.
  const auto a = random_csr<IT, VT>(24, 24, 0.25, 7);
  const auto m = random_csr<IT, VT>(24, 24, 0.3, 8);
  for (MaskedAlgorithm algo :
       {MaskedAlgorithm::kMsa, MaskedAlgorithm::kHash, MaskedAlgorithm::kMca,
        MaskedAlgorithm::kHeap, MaskedAlgorithm::kInner,
        MaskedAlgorithm::kAdaptive}) {
    MaskedSpgemmOptions structural;
    structural.algorithm = algo;
    MaskedSpgemmOptions valued = structural;
    valued.mask_semantics = MaskSemantics::kValued;
    EXPECT_TRUE(csr_equal(masked_multiply<SR>(a, a, m, structural),
                          masked_multiply<SR>(a, a, m, valued)))
        << algorithm_name(algo);
  }
}

TEST(MaskSemantics, AllZeroValuedMaskYieldsEmpty) {
  const auto a = random_csr<IT, VT>(10, 10, 0.5, 9);
  auto m = random_csr<IT, VT>(10, 10, 0.5, 10);
  std::fill(m.values.begin(), m.values.end(), 0.0);
  MaskedSpgemmOptions opt;
  opt.mask_semantics = MaskSemantics::kValued;
  EXPECT_EQ(masked_multiply<SR>(a, a, m, opt).nnz(), 0u);
}

}  // namespace
}  // namespace msp
