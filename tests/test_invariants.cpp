// Seeded-corruption coverage for the checked-build invariant layer
// (core/invariants.hpp). Each test corrupts one structure on purpose —
// through public seams that bypass the structures' own MSP_ASSERTs — and
// asserts the validator raises msp::invariant_error naming exactly the
// violated invariant. The suite ends with a no-false-positives pass: the
// conformance corpus and the dynamic/sharded lifecycles run with every
// boundary check live (this TU compiles with MSPGEMM_CHECKED forced on —
// see tests/CMakeLists.txt) and must stay green and bit-exact.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "conformance/conformance_support.hpp"
#include "core/engine.hpp"
#include "core/invariants.hpp"
#include "core/shard.hpp"
#include "core/tiled_engine.hpp"
#include "matrix/delta.hpp"
#include "test_support.hpp"

namespace msp {
namespace {

using msp::testing::csr_equal;
using msp::testing::random_csr;

static_assert(MSP_CHECKED_BUILD,
              "test_invariants must compile with MSPGEMM_CHECKED=1 (see "
              "tests/CMakeLists.txt) so the boundary checks are live");

/// Assert `stmt` throws invariant_error naming `expected_invariant`.
#define EXPECT_INVARIANT(stmt, expected_invariant)                         \
  do {                                                                     \
    try {                                                                  \
      (void)(stmt);                                                        \
      FAIL() << "expected invariant_error(" << (expected_invariant)        \
             << "), nothing thrown";                                       \
    } catch (const invariant_error& e) {                                   \
      EXPECT_EQ(e.invariant(), (expected_invariant)) << e.what();          \
      EXPECT_FALSE(e.site().empty()) << "site must name the boundary";     \
    }                                                                      \
  } while (0)

CsrMatrix<> small_csr() {
  // 4x4, two entries in row 0 so in-row ordering can be corrupted.
  return CsrMatrix<>(4, 4, {0, 2, 3, 4, 5}, {0, 2, 1, 3, 0},
                     {1.0, 2.0, 3.0, 4.0, 5.0});
}

// ---------------------------------------------------------------------------
// CSR well-formedness
// ---------------------------------------------------------------------------

TEST(InvariantsCsr, UnsortedRowIsNamed) {
  CsrMatrix<> x = small_csr();
  std::swap(x.colids[0], x.colids[1]);  // row 0: {2, 0} — out of order
  EXPECT_INVARIANT(invariants::check_csr(x, "test"), "csr.colids_sorted");
}

TEST(InvariantsCsr, NnzAccountingIsNamed) {
  CsrMatrix<> x = small_csr();
  x.rowptr.back() = 4;  // claims 4 entries, arrays hold 5
  EXPECT_INVARIANT(invariants::check_csr(x, "test"), "csr.nnz_accounting");
}

TEST(InvariantsCsr, OutOfBoundsColumnIsNamed) {
  CsrMatrix<> x = small_csr();
  x.colids[3] = 7;  // ncols is 4
  EXPECT_INVARIANT(invariants::check_csr(x, "test"), "csr.colids_in_bounds");
}

TEST(InvariantsCsr, NonMonotoneRowptrIsNamed) {
  CsrMatrix<> x = small_csr();
  x.rowptr[2] = 1;  // row 1 would have negative length
  EXPECT_INVARIANT(invariants::check_csr(x, "test"), "csr.rowptr_monotone");
}

TEST(InvariantsCsr, WellFormedPasses) {
  EXPECT_NO_THROW(invariants::check_csr(small_csr(), "test"));
  EXPECT_NO_THROW(
      invariants::check_csr(random_csr<int, double>(40, 30, 0.2, 7), "test"));
}

// ---------------------------------------------------------------------------
// Structure dirty log
// ---------------------------------------------------------------------------

using LogRange = StructureDirtyLog<index_t>::Range;

TEST(InvariantsDirtyLog, StaleEpochBeyondLogEpochIsNamed) {
  const std::vector<LogRange> entries{{5, 0, 2}};
  EXPECT_INVARIANT(invariants::check_dirty_log_ranges(entries, 3, "test"),
                   "dirty_log.epoch_bound");
}

TEST(InvariantsDirtyLog, NonMonotoneEpochIsNamed) {
  const std::vector<LogRange> entries{{3, 0, 2}, {2, 1, 4}};
  EXPECT_INVARIANT(invariants::check_dirty_log_ranges(entries, 5, "test"),
                   "dirty_log.epoch_monotone");
}

TEST(InvariantsDirtyLog, EmptyRangeIsNamed) {
  const std::vector<LogRange> entries{{1, 3, 3}};
  EXPECT_INVARIANT(invariants::check_dirty_log_ranges(entries, 1, "test"),
                   "dirty_log.range_nonempty");
}

TEST(InvariantsDirtyLog, LiveLogStaysCleanAcrossTheFold) {
  // record() self-checks at every call in this TU; drive it far past the
  // 64-entry cap so the oldest-half fold runs repeatedly.
  StructureDirtyLog<index_t> log;
  for (int i = 0; i < 500; ++i) {
    log.record(static_cast<index_t>(i % 97), static_cast<index_t>(i % 97 + 2));
  }
  EXPECT_NO_THROW(log.check_invariants("test"));
  // Collapsed entries stay a covering superset: a cursor from epoch 0 must
  // see every row ever recorded.
  index_t lo = std::numeric_limits<index_t>::max(), hi = 0;
  for (const auto& r : log.ranges_since(0)) {
    lo = std::min(lo, r.begin);
    hi = std::max(hi, r.end);
  }
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 98);
}

// ---------------------------------------------------------------------------
// Coalesce coverage
// ---------------------------------------------------------------------------

TEST(InvariantsCoalesce, DroppedRunIsNamed) {
  using P = std::pair<index_t, index_t>;
  const std::vector<P> runs{{0, 4}, {1000, 1004}};
  const std::vector<P> out{{0, 4}};  // lost the second run
  EXPECT_INVARIANT(invariants::check_coalesce(runs, out, 32, "test"),
                   "coalesce.coverage");
}

TEST(InvariantsCoalesce, OverlappingOutputIsNamed) {
  using P = std::pair<index_t, index_t>;
  const std::vector<P> runs{{0, 4}, {1000, 1004}};
  const std::vector<P> out{{0, 1001}, {1000, 1004}};
  EXPECT_INVARIANT(invariants::check_coalesce(runs, out, 32, "test"),
                   "coalesce.sorted_disjoint");
}

TEST(InvariantsCoalesce, CapOverflowIsNamed) {
  using P = std::pair<index_t, index_t>;
  const std::vector<P> runs{{0, 1}, {1000, 1001}, {2000, 2001}};
  EXPECT_INVARIANT(invariants::check_coalesce(runs, runs, 2, "test"),
                   "coalesce.max_ranges");
}

TEST(InvariantsCoalesce, RealCoalesceOutputPasses) {
  // coalesce_dirty_ranges self-checks its output in this TU; sweep a mix
  // of dense, scattered, and cap-straining inputs.
  std::vector<std::pair<index_t, index_t>> runs;
  for (index_t i = 0; i < 200; ++i) {
    runs.emplace_back(i * 700, i * 700 + 3);
  }
  const auto out = coalesce_dirty_ranges<index_t>(runs, 16);
  EXPECT_LE(out.size(), 16u);
  EXPECT_NO_THROW(invariants::check_coalesce(runs, out, 16, "test"));
}

// ---------------------------------------------------------------------------
// Plan consistency
// ---------------------------------------------------------------------------

TEST(InvariantsPlan, FlopsLengthMismatchIsNamed) {
  const auto a = random_csr<int, double>(16, 16, 0.3, 1);
  const auto b = random_csr<int, double>(16, 16, 0.3, 2);
  const auto m = random_csr<int, double>(16, 16, 0.3, 3);
  SpgemmPlan<int, double, double> plan(a, b, m, MaskKind::kMask,
                                       MaskSemantics::kStructural);
  // Execute against an A with a different row count: the captured flops
  // vector no longer describes it.
  const auto a_other = random_csr<int, double>(24, 16, 0.3, 4);
  EXPECT_INVARIANT(plan.check_invariants(a_other, b, m, "test"),
                   "plan.flops_length");
}

TEST(InvariantsPlan, MaskShapeMismatchIsNamed) {
  const auto a = random_csr<int, double>(16, 16, 0.3, 1);
  const auto b = random_csr<int, double>(16, 16, 0.3, 2);
  const auto m = random_csr<int, double>(16, 16, 0.3, 3);
  SpgemmPlan<int, double, double> plan(a, b, m, MaskKind::kMask,
                                       MaskSemantics::kStructural);
  const auto m_other = random_csr<int, double>(16, 12, 0.3, 4);
  EXPECT_INVARIANT(plan.check_invariants(a, b, m_other, "test"),
                   "plan.mask_shape");
}

TEST(InvariantsPlan, CorruptSymbolicRowptrIsNamed) {
  const auto a = random_csr<int, double>(16, 16, 0.3, 1);
  const auto b = random_csr<int, double>(16, 16, 0.3, 2);
  const auto m = random_csr<int, double>(16, 16, 0.3, 3);
  SpgemmPlan<int, double, double> plan(a, b, m, MaskKind::kMask,
                                       MaskSemantics::kStructural);
  // structure_sink() is the drivers' export seam; fill it with a
  // non-monotone rowptr as a buggy symbolic pass would.
  std::vector<int>& rowptr = *plan.structure_sink();
  rowptr.assign(17, 0);
  rowptr[5] = 4;
  rowptr[6] = 2;
  EXPECT_INVARIANT(plan.check_invariants(a, b, m, "test"),
                   "plan.symbolic_rowptr_monotone");

  rowptr.assign(9, 0);  // wrong length for 16 output rows
  EXPECT_INVARIANT(plan.check_invariants(a, b, m, "test"),
                   "plan.symbolic_rowptr_size");
}

TEST(InvariantsPlan, FreshPlanPasses) {
  const auto a = random_csr<int, double>(16, 16, 0.3, 1);
  const auto b = random_csr<int, double>(16, 16, 0.3, 2);
  const auto m = random_csr<int, double>(16, 16, 0.3, 3);
  SpgemmPlan<int, double, double> plan(a, b, m, MaskKind::kMask,
                                       MaskSemantics::kStructural);
  EXPECT_NO_THROW(plan.check_invariants(a, b, m, "test"));
  plan.ensure_bounds(m);
  plan.ensure_b_csc(b);
  EXPECT_NO_THROW(plan.check_invariants(a, b, m, "test"));
}

// ---------------------------------------------------------------------------
// DeltaMatrix overlay consistency
// ---------------------------------------------------------------------------

TEST(InvariantsDelta, CorruptedMaterializedRowIsNamed) {
  // Threshold > 1 keeps the overlay from auto-compacting (1 pending row
  // out of 4 already crosses the 0.25 default on a matrix this small).
  DeltaMatrix<> dm(small_csr(), 10.0);
  const std::vector<EdgeUpdate<>> edits{{1, 2, 9.0, false}};
  dm.apply_updates(std::span<const EdgeUpdate<>>(edits));
  ASSERT_GT(dm.pending_rows(), 0u);
  // Corrupt the materialized view behind the overlay's back: row 0 holds
  // two sorted entries; swapping them breaks CSR ordering.
  auto& current = const_cast<CsrMatrix<>&>(dm.matrix());
  std::swap(current.colids[0], current.colids[1]);
  EXPECT_INVARIANT(dm.check_invariants("test"), "csr.colids_sorted");
}

TEST(InvariantsDelta, MergedRowDivergenceIsNamed) {
  DeltaMatrix<> dm(small_csr(), 10.0);  // keep the overlay row live
  const std::vector<EdgeUpdate<>> edits{{1, 2, 9.0, false}};
  dm.apply_updates(std::span<const EdgeUpdate<>>(edits));
  ASSERT_GT(dm.pending_rows(), 0u);
  // Overlay stores row 1's merged contents; skew the materialized value so
  // the two views of the same row disagree (structure stays well-formed).
  auto& current = const_cast<CsrMatrix<>&>(dm.matrix());
  current.values[static_cast<std::size_t>(current.rowptr[1])] += 1.0;
  EXPECT_INVARIANT(dm.check_invariants("test"), "delta.merged_row_agreement");
}

TEST(InvariantsDelta, UpdateStreamStaysClean) {
  // apply_updates self-checks at every batch in this TU: mixed inserts,
  // assigns, deletes, and a forced compact must all pass.
  DeltaMatrix<> dm(random_csr<index_t, double>(64, 64, 0.1, 11), 0.05);
  std::vector<EdgeUpdate<>> edits;
  for (int batch = 0; batch < 12; ++batch) {
    edits.clear();
    for (int k = 0; k < 40; ++k) {
      const auto row = static_cast<index_t>((batch * 37 + k * 13) % 64);
      const auto col = static_cast<index_t>((batch * 17 + k * 29) % 64);
      edits.push_back({row, col, 1.0 + k, k % 5 == 0});
    }
    EXPECT_NO_THROW(
        dm.apply_updates(std::span<const EdgeUpdate<>>(edits)));
  }
  dm.compact();
  EXPECT_NO_THROW(dm.check_invariants("test"));
}

// ---------------------------------------------------------------------------
// ShardStore accounting
// ---------------------------------------------------------------------------

TEST(InvariantsShardStore, ResidentBytesDriftIsNamed) {
  ShardStore store;
  const auto a = random_csr<index_t, double>(64, 64, 0.2, 5);
  ShardedMatrix<index_t, double> sm(a, 4, &store);
  EXPECT_NO_THROW(store.check_invariants("test"));
  store.adjust_resident_bytes_for_testing(64);  // leak 64 phantom bytes
  EXPECT_INVARIANT(store.check_invariants("test"),
                   "shard_store.resident_bytes_accounting");
  store.adjust_resident_bytes_for_testing(-64);
  EXPECT_NO_THROW(store.check_invariants("test"));
}

TEST(InvariantsShardStore, LifecycleUnderBudgetStaysClean) {
  // Every pin/add/spill/prefetch boundary self-checks in this TU. A tight
  // budget forces real spills and reloads; payloads must round-trip
  // bit-identically.
  ShardStore::Options opt;
  opt.resident_budget = 0;  // only pinned shards stay resident
  ShardStore store(opt);
  const auto a = random_csr<index_t, double>(128, 96, 0.15, 9);
  ShardedMatrix<index_t, double> sm(a, 4, &store);
  store.spill_all();
  for (int round = 0; round < 2; ++round) {
    for (int s = 0; s < sm.shards(); ++s) {
      sm.prefetch(s);
      const auto lease = sm.lease(s);
      const CsrMatrix<index_t, double> expect =
          slice_rows(a, sm.row_begin(s), sm.row_end(s));
      EXPECT_TRUE(csr_equal(expect, lease.matrix())) << "shard " << s;
    }
  }
  store.wait_prefetches();
  EXPECT_NO_THROW(store.check_invariants("test"));
  EXPECT_GT(store.stats().spills.load(), 0u);
  EXPECT_GT(store.stats().reloads.load(), 0u);
}

// ---------------------------------------------------------------------------
// Result-splice cache shape agreement
// ---------------------------------------------------------------------------

TEST(InvariantsSplice, ShapeMismatchIsNamed) {
  const auto prev = random_csr<int, double>(16, 16, 0.3, 1);
  EXPECT_INVARIANT(invariants::check_splice(prev, 16, 12, "test"),
                   "engine.splice_shape");
  EXPECT_INVARIANT(invariants::check_splice(prev, 20, 16, "test"),
                   "engine.splice_shape");
  EXPECT_NO_THROW(invariants::check_splice(prev, 16, 16, "test"));
}

TEST(InvariantsSplice, IncrementalUpdateQueryStreamStaysClean) {
  // Live splice path with the boundary checks armed: interleave updates
  // and queries through the Engine facade and pin every answer to a
  // from-scratch rebuild.
  using SR = PlusTimes<double>;
  DeltaMatrix<> dm(random_csr<index_t, double>(96, 96, 0.08, 21));
  const auto b = random_csr<index_t, double>(96, 96, 0.08, 22);
  const auto m = random_csr<index_t, double>(96, 96, 0.12, 23);
  Engine eng;
  auto a_handle = eng.bind(dm.matrix());
  const auto b_handle = eng.bind(b);
  const auto m_handle = eng.bind(m);
  for (int batch = 0; batch < 6; ++batch) {
    std::vector<EdgeUpdate<>> edits;
    for (int k = 0; k < 10; ++k) {
      edits.push_back({static_cast<index_t>((batch * 31 + k * 7) % 96),
                       static_cast<index_t>((batch * 11 + k * 3) % 96),
                       2.0 + k, k % 4 == 0});
    }
    eng.update(dm, a_handle, std::span<const EdgeUpdate<>>(edits));
    const auto got = eng.multiply(a_handle, b_handle)
                         .mask(m_handle)
                         .semiring<PlusTimes>()
                         .scheme(Scheme::kHash2P)
                         .run();
    const auto expect =
        baseline_saxpy<SR>(dm.matrix(), b, m, MaskKind::kMask);
    EXPECT_TRUE(csr_equal(expect, got)) << "batch " << batch;
  }
}

// ---------------------------------------------------------------------------
// Stale-handle fingerprint freshness
// ---------------------------------------------------------------------------

TEST(InvariantsHints, StaleHandleFingerprintIsNamed) {
  auto a = small_csr();
  const auto b = random_csr<index_t, double>(4, 4, 0.5, 32);
  const auto m = random_csr<index_t, double>(4, 4, 0.6, 33);
  Engine eng;
  auto a_handle = eng.bind(a);
  // The documented BoundMatrix hazard: mutate the bound matrix's pattern
  // without values_changed/structure_changed/rebind. The handle's cached
  // fingerprint now describes a pattern the operand no longer has. Row 0
  // is {0, 2}; moving the first entry to column 1 keeps the CSR perfectly
  // well-formed — only the pattern hash can catch the staleness.
  a.colids[0] = 1;
  EXPECT_INVARIANT(eng.multiply(a_handle, b)
                       .mask(m)
                       .semiring<PlusTimes>()
                       .scheme(Scheme::kHash2P)
                       .run(),
                   "exec.hint_fingerprint_fresh");
  // rebind() is the documented fix: the handle re-hashes the new pattern.
  a_handle.rebind(a);
  EXPECT_NO_THROW(eng.multiply(a_handle, b)
                      .mask(m)
                      .semiring<PlusTimes>()
                      .scheme(Scheme::kHash2P)
                      .run());
}

// ---------------------------------------------------------------------------
// No false positives: conformance corpus with every check live
// ---------------------------------------------------------------------------

TEST(InvariantsNoFalsePositives, ConformanceCorpusAllConfigs) {
  using SR = PlusTimes<double>;
  ExecutionContext ctx;
  for (const auto& cse : conformance::corpus<index_t>()) {
    for (const auto& cfg : conformance::all_configs()) {
      const auto expect = conformance::expected_result<SR>(
          cse.a, cse.b, cse.m, cfg.kind, cfg.semantics);
      Engine eng(ctx);
      const auto got = eng.multiply(cse.a, cse.b)
                           .mask(cse.m)
                           .semiring<PlusTimes>()
                           .scheme(cfg.scheme)
                           .mask_kind(cfg.kind)
                           .semantics(cfg.semantics)
                           .run();
      EXPECT_TRUE(csr_equal(expect, got)) << cse.name << " / " << cfg.name();
    }
  }
}

TEST(InvariantsNoFalsePositives, TiledEngineMatchesMonolithic) {
  using SR = PlusTimes<double>;
  const auto a = random_csr<index_t, double>(120, 100, 0.12, 41);
  const auto b = random_csr<index_t, double>(100, 90, 0.12, 42);
  const auto m = random_csr<index_t, double>(120, 90, 0.2, 43);
  ShardStore::Options opt;
  opt.resident_budget = 1 << 12;  // force spill traffic mid-multiply
  ShardStore store(opt);
  ShardedMatrix<index_t, double> sa(a, 4, &store);
  ShardedMatrix<index_t, double> smask(m, sa, &store);
  TiledEngine tiled;
  const auto got = tiled.multiply<SR>(Scheme::kHash2P, sa, b, smask);
  const auto expect = baseline_saxpy<SR>(a, b, m, MaskKind::kMask);
  EXPECT_TRUE(csr_equal(expect, got));
}

}  // namespace
}  // namespace msp
