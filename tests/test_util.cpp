// Tests for utilities: prefix sum, power-of-two helpers, checked casts,
// summary statistics, and Dolan–Moré performance profiles.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "util/common.hpp"
#include "util/prefix_sum.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace msp {
namespace {

TEST(PrefixSum, EmptyVector) {
  std::vector<int> v;
  EXPECT_EQ(exclusive_prefix_sum(v), 0);
}

TEST(PrefixSum, SmallSerialPath) {
  std::vector<int> v{3, 1, 4, 1, 5};
  EXPECT_EQ(exclusive_prefix_sum(v), 14);
  EXPECT_EQ(v, (std::vector<int>{0, 3, 4, 8, 9}));
}

TEST(PrefixSum, LargeParallelPathMatchesSerial) {
  const std::size_t n = 1 << 18;  // above the serial cutoff
  std::vector<long> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<long>(i % 7);
  std::vector<long> expected = v;
  long run = 0;
  for (auto& x : expected) {
    long c = x;
    x = run;
    run += c;
  }
  EXPECT_EQ(exclusive_prefix_sum(v), run);
  EXPECT_EQ(v, expected);
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(CeilDiv, Values) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(CheckedCast, InRangePasses) {
  EXPECT_EQ(checked_cast<int>(42L), 42);
  EXPECT_EQ(checked_cast<std::int8_t>(127), 127);
}

TEST(CheckedCast, OutOfRangeThrows) {
  EXPECT_THROW(checked_cast<std::int8_t>(128), invalid_argument_error);
  EXPECT_THROW(checked_cast<std::uint32_t>(-1), invalid_argument_error);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  const double s1 = t.seconds();
  EXPECT_GT(s1, 0.0);
  // millis() reads the clock again, so it can only be >= an earlier read.
  EXPECT_GE(t.millis(), s1 * 1e3);
  t.reset();
  EXPECT_LT(t.seconds(), s1 + 1.0);
}

TEST(Summarize, BasicStats) {
  const RunStats s = summarize({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_EQ(s.reps, 3);
}

TEST(Summarize, EvenCountMedian) {
  const RunStats s = summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Summarize, EmptyInput) {
  const RunStats s = summarize({});
  EXPECT_EQ(s.reps, 0);
}

TEST(PerformanceProfile, KnownSmallExample) {
  // Two schemes, three cases. Scheme 0 is best on cases 0 and 1; scheme 1
  // is best on case 2 where scheme 0 is 2x slower.
  const std::vector<std::vector<double>> times = {
      {1.0, 2.0, 4.0},
      {1.5, 4.0, 2.0},
  };
  const std::vector<double> grid = {1.0, 1.5, 2.0};
  const auto p0 = performance_profile(times, 0, grid);
  ASSERT_EQ(p0.size(), 3u);
  EXPECT_NEAR(p0[0].fraction, 2.0 / 3.0, 1e-12);  // best on 2 of 3 at ratio 1
  EXPECT_NEAR(p0[2].fraction, 1.0, 1e-12);        // within 2x everywhere
  const auto p1 = performance_profile(times, 1, grid);
  EXPECT_NEAR(p1[0].fraction, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(p1[1].fraction, 2.0 / 3.0, 1e-12);  // 1.5x on case 0
  EXPECT_NEAR(p1[2].fraction, 3.0 / 3.0, 1e-12);  // 2x on case 1
}

TEST(PerformanceProfile, IgnoresNonFiniteEntries) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<std::vector<double>> times = {
      {1.0, inf},
      {2.0, 3.0},
  };
  const auto p0 = performance_profile(times, 0, {1.0, 10.0});
  // Scheme 0 solves only case 0; fractions count over all valid cases.
  EXPECT_NEAR(p0[0].fraction, 0.5, 1e-12);
  EXPECT_NEAR(p0[1].fraction, 0.5, 1e-12);
  const auto p1 = performance_profile(times, 1, {1.0, 2.0, 10.0});
  EXPECT_NEAR(p1[0].fraction, 0.5, 1e-12);  // best on case 1
  EXPECT_NEAR(p1[1].fraction, 1.0, 1e-12);  // 2x on case 0
}

TEST(PerformanceProfile, DefaultGridShape) {
  const auto grid = default_ratio_grid(2.4, 0.1);
  ASSERT_FALSE(grid.empty());
  EXPECT_DOUBLE_EQ(grid.front(), 1.0);
  EXPECT_NEAR(grid.back(), 2.4, 1e-9);
}

TEST(SplitTimer, AccumulatesSlots) {
  SplitTimer t;
  t.start();
  t.lap(0);
  t.lap(1);
  EXPECT_GE(t.total(0), 0.0);
  EXPECT_GE(t.total(1), 0.0);
  t.clear();
  EXPECT_DOUBLE_EQ(t.total(0), 0.0);
  EXPECT_DOUBLE_EQ(t.total(1), 0.0);
  EXPECT_DOUBLE_EQ(t.total(-1), 0.0);  // out-of-range slots are inert
  EXPECT_DOUBLE_EQ(t.total(99), 0.0);
}

}  // namespace
}  // namespace msp
