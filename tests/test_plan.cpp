// Tests for the plan/execute subsystem (core/plan.hpp,
// core/exec_context.hpp): plan-based execution must be bit-exact with the
// planless path for every Scheme × mask kind × mask semantics over the
// conformance corpora, including plan *reuse* (second call on unchanged
// patterns), mutated-values/same-pattern reuse, and cache invalidation
// when a pattern actually changes. Plus unit tests for the flops-binned
// row partition, pattern fingerprints, and the plan-aware applications.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "apps/bc.hpp"
#include "apps/ktruss.hpp"
#include "apps/tricount.hpp"
#include "conformance/conformance_support.hpp"
#include "core/exec_context.hpp"
#include "core/plan.hpp"
#include "gen/erdos_renyi.hpp"
#include "test_support.hpp"

namespace {

using namespace msp;
using msp::conformance::Config;
using msp::conformance::all_configs;
using msp::conformance::corpus;
using msp::conformance::run_config;
using msp::testing::csr_equal;
using msp::testing::random_csr;

using SR = PlusTimes<double>;

// ---------------------------------------------------------------------------
// Plan-based execution is bit-exact with planless execution, including on
// reuse, for every configuration of the conformance sweep.
// ---------------------------------------------------------------------------

template <class IT>
void sweep_plan_vs_planless() {
  ExecutionContext ctx;
  for (const auto& cse : corpus<IT>()) {
    for (const Config& cfg : all_configs()) {
      SCOPED_TRACE(cse.name + "/" + cfg.name());
      const auto expected =
          run_config<SR, IT, double>(cfg, cse.a, cse.b, cse.m);
      const auto first = run_scheme<SR>(cfg.scheme, cse.a, cse.b, cse.m, ctx,
                                        cfg.kind, nullptr, cfg.semantics);
      EXPECT_TRUE(csr_equal(expected, first));
      // Second call: the plan (and, for 2P schemes, the symbolic
      // structure) comes from the cache; results must not change.
      const auto reused = run_scheme<SR>(cfg.scheme, cse.a, cse.b, cse.m,
                                         ctx, cfg.kind, nullptr,
                                         cfg.semantics);
      EXPECT_TRUE(csr_equal(expected, reused));
    }
  }
  EXPECT_GT(ctx.cache_stats().plan_hits, 0u);
}

TEST(PlanConformance, MatchesPlanlessOnFullCorpusInt32) {
  sweep_plan_vs_planless<int>();
}

TEST(PlanConformance, MatchesPlanlessOnFullCorpusInt64) {
  sweep_plan_vs_planless<std::int64_t>();
}

// ---------------------------------------------------------------------------
// Reuse semantics
// ---------------------------------------------------------------------------

TEST(PlanReuse, MutatedValuesSamePatternSeesFreshValues) {
  auto a = random_csr<int, double>(40, 40, 0.2, 101);
  auto b = random_csr<int, double>(40, 40, 0.2, 102);
  const auto m = random_csr<int, double>(40, 40, 0.3, 103);
  ExecutionContext ctx;

  for (Scheme s : {Scheme::kMsa1P, Scheme::kMsa2P, Scheme::kHash2P,
                   Scheme::kInner1P, Scheme::kInner2P}) {
    SCOPED_TRACE(scheme_name(s));
    (void)run_scheme<SR>(s, a, b, m, ctx);  // warm the plan cache

    // Mutate values only: the pattern (rowptr/colids) is untouched, so the
    // cached plan must be reused AND the new values must flow through —
    // notably through the plan's cached transpose for the Inner schemes.
    for (auto& v : a.values) v += 1.0;
    for (auto& v : b.values) v += 2.0;

    MaskedSpgemmStats stats;
    const auto planned = run_scheme<SR>(s, a, b, m, ctx, MaskKind::kMask,
                                        &stats);
    const auto planless = run_scheme<SR>(s, a, b, m);
    EXPECT_TRUE(csr_equal(planless, planned));
    EXPECT_TRUE(stats.plan_cache_hit);
  }
}

TEST(PlanReuse, SecondCallSkipsSymbolicPhase) {
  const auto a = random_csr<int, double>(50, 50, 0.15, 111);
  const auto b = random_csr<int, double>(50, 50, 0.15, 112);
  const auto m = random_csr<int, double>(50, 50, 0.25, 113);
  ExecutionContext ctx;
  MaskedSpgemmOptions opt;
  opt.phase = MaskedPhase::kTwoPhase;

  MaskedSpgemmStats first;
  opt.stats = &first;
  (void)ctx.multiply<SR>(a, b, m, opt);
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_FALSE(first.symbolic_skipped);

  MaskedSpgemmStats second;
  opt.stats = &second;
  (void)ctx.multiply<SR>(a, b, m, opt);
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_TRUE(second.symbolic_skipped);
  EXPECT_DOUBLE_EQ(second.symbolic_seconds, 0.0);
}

TEST(PlanReuse, OnePhaseRunSeedsTwoPhaseStructure) {
  const auto a = random_csr<int, double>(50, 50, 0.15, 121);
  const auto b = random_csr<int, double>(50, 50, 0.15, 122);
  const auto m = random_csr<int, double>(50, 50, 0.25, 123);
  ExecutionContext ctx;
  MaskedSpgemmOptions opt;

  // A one-phase run's compacted row pointers ARE the symbolic structure;
  // the plan adopts them, so the first-ever 2P call already skips
  // symbolic work.
  opt.phase = MaskedPhase::kOnePhase;
  const auto c1 = ctx.multiply<SR>(a, b, m, opt);

  MaskedSpgemmStats stats;
  opt.phase = MaskedPhase::kTwoPhase;
  opt.stats = &stats;
  const auto c2 = ctx.multiply<SR>(a, b, m, opt);
  EXPECT_TRUE(stats.symbolic_skipped);
  EXPECT_TRUE(csr_equal(c1, c2));
}

TEST(PlanReuse, CrossSchemeSharing) {
  const auto a = random_csr<int, double>(30, 30, 0.2, 131);
  const auto b = random_csr<int, double>(30, 30, 0.2, 132);
  const auto m = random_csr<int, double>(30, 30, 0.3, 133);
  ExecutionContext ctx;
  // All algorithms share one plan per (patterns, kind, semantics) key.
  (void)run_scheme<SR>(Scheme::kMsa1P, a, b, m, ctx);
  (void)run_scheme<SR>(Scheme::kHash2P, a, b, m, ctx);
  (void)run_scheme<SR>(Scheme::kHeap1P, a, b, m, ctx);
  EXPECT_EQ(ctx.plan_count(), 1u);
  EXPECT_EQ(ctx.cache_stats().plan_misses, 1u);
  EXPECT_EQ(ctx.cache_stats().plan_hits, 2u);
}

// ---------------------------------------------------------------------------
// Cache invalidation
// ---------------------------------------------------------------------------

TEST(PlanInvalidation, PatternChangeMissesAndRecomputes) {
  const auto a = random_csr<int, double>(40, 40, 0.2, 141);
  const auto b = random_csr<int, double>(40, 40, 0.2, 142);
  auto m = random_csr<int, double>(40, 40, 0.3, 143);
  ASSERT_GT(m.nnz(), 0u);
  ExecutionContext ctx;

  (void)ctx.multiply<SR>(a, b, m, {});
  EXPECT_EQ(ctx.cache_stats().plan_misses, 1u);

  // Drop one stored entry: same shape, different pattern → new plan.
  const int victim_col = m.colids[0];
  const auto shrunk = select(
      m, [victim_col](int i, int j, const double&) {
        return !(i == 0 && j == victim_col);
      });
  ASSERT_EQ(shrunk.nnz(), m.nnz() - 1);
  MaskedSpgemmStats stats;
  MaskedSpgemmOptions opt;
  opt.stats = &stats;
  const auto planned = ctx.multiply<SR>(a, b, shrunk, opt);
  EXPECT_FALSE(stats.plan_cache_hit);
  EXPECT_EQ(ctx.cache_stats().plan_misses, 2u);
  EXPECT_TRUE(csr_equal(masked_multiply<SR>(a, b, shrunk), planned));
}

TEST(PlanInvalidation, ValuedSemanticsSeeValueZeroing) {
  const auto a = random_csr<int, double>(30, 30, 0.25, 151);
  const auto b = random_csr<int, double>(30, 30, 0.25, 152);
  auto m = random_csr<int, double>(30, 30, 0.4, 153);
  ASSERT_GT(m.nnz(), 0u);
  ExecutionContext ctx;
  MaskedSpgemmOptions opt;
  opt.mask_semantics = MaskSemantics::kValued;

  (void)ctx.multiply<SR>(a, b, m, opt);

  // Zero a stored mask value: the stored pattern is unchanged but the
  // *effective* pattern under valued semantics is not — the fingerprint
  // must catch it and the result must match planless execution.
  m.values[m.nnz() / 2] = 0.0;
  MaskedSpgemmStats stats;
  opt.stats = &stats;
  const auto planned = ctx.multiply<SR>(a, b, m, opt);
  opt.stats = nullptr;
  EXPECT_FALSE(stats.plan_cache_hit);
  EXPECT_TRUE(csr_equal(masked_multiply<SR>(a, b, m, opt), planned));

  // Under *structural* semantics the same mutation is invisible: hit.
  MaskedSpgemmOptions structural;
  (void)ctx.multiply<SR>(a, b, m, structural);
  MaskedSpgemmStats sstats;
  structural.stats = &sstats;
  m.values[0] = 0.0;
  (void)ctx.multiply<SR>(a, b, m, structural);
  EXPECT_TRUE(sstats.plan_cache_hit);
}

TEST(PlanInvalidation, FifoEvictionBoundsTheCache) {
  const auto a = random_csr<int, double>(20, 20, 0.2, 161);
  const auto b = random_csr<int, double>(20, 20, 0.2, 162);
  ExecutionContext ctx(/*max_plans=*/2);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto m = random_csr<int, double>(20, 20, 0.3, 170 + seed);
    (void)ctx.multiply<SR>(a, b, m, {});
  }
  EXPECT_LE(ctx.plan_count(), 2u);
  EXPECT_EQ(ctx.cache_stats().plan_evictions, 3u);
}

// ---------------------------------------------------------------------------
// Flops-binned row partition
// ---------------------------------------------------------------------------

TEST(RowPartition, CoversEveryNonzeroFlopsRowExactlyOnce) {
  for (int lists : {1, 2, 3, 7, 16}) {
    const std::vector<std::int64_t> flops = {0,  5, 1000, 3, 0,  77, 2,
                                             19, 0, 1,    8, 64, 512};
    const auto part = build_flops_partition<int>(flops, lists);
    EXPECT_EQ(part.lists(), lists);
    std::vector<int> seen(flops.size(), 0);
    for (int l = 0; l < part.lists(); ++l) {
      for (int r : part.list(l)) ++seen[static_cast<std::size_t>(r)];
    }
    for (std::size_t i = 0; i < flops.size(); ++i) {
      EXPECT_EQ(seen[i], flops[i] > 0 ? 1 : 0) << "row " << i;
    }
  }
}

TEST(RowPartition, BalancesSkewedFlops) {
  // Heavily skewed (RMAT-like) distribution: a handful of hub rows, a long
  // light tail. Round-robin dealing within log2 bins must spread the hubs.
  std::vector<std::int64_t> flops(1000);
  for (std::size_t i = 0; i < flops.size(); ++i) {
    flops[i] = static_cast<std::int64_t>(i % 97) + 1;
  }
  for (std::size_t i = 0; i < 8; ++i) flops[i * 100] = 1 << 20;
  const int lists = 4;
  const auto part = build_flops_partition<int>(flops, lists);
  std::vector<std::int64_t> load(static_cast<std::size_t>(lists), 0);
  for (int l = 0; l < lists; ++l) {
    for (int r : part.list(l)) load[static_cast<std::size_t>(l)] += flops[r];
  }
  const std::int64_t maxload = *std::max_element(load.begin(), load.end());
  const std::int64_t minload = *std::min_element(load.begin(), load.end());
  // 8 hubs over 4 lists → 2 per list; the tail is near-uniform. Allow 2×.
  EXPECT_LE(maxload, 2 * minload);
}

TEST(RowPartition, EmptyAndAllZeroFlops) {
  EXPECT_EQ(build_flops_partition<int>({}, 4).rows.size(), 0u);
  const auto part = build_flops_partition<int>({0, 0, 0}, 4);
  EXPECT_EQ(part.rows.size(), 0u);
  EXPECT_EQ(part.lists(), 4);
}

// ---------------------------------------------------------------------------
// Pattern fingerprints
// ---------------------------------------------------------------------------

TEST(PatternFingerprint, InsensitiveToValuesSensitiveToPattern) {
  auto m = random_csr<int, double>(30, 30, 0.3, 181);
  ASSERT_GT(m.nnz(), 1u);
  const auto base = pattern_fingerprint(m);
  auto mutated = m;
  for (auto& v : mutated.values) v *= 3.0;
  EXPECT_EQ(pattern_fingerprint(mutated), base);

  const auto shrunk =
      select(m, [](int, int j, const double&) { return j != 0; });
  if (shrunk.nnz() != m.nnz()) {
    EXPECT_NE(pattern_fingerprint(shrunk), base);
  }

  // Valued fingerprints additionally see value zeroing.
  const auto valued_base = pattern_fingerprint(m, /*include_value_zeros=*/true);
  auto zeroed = m;
  zeroed.values[0] = 0.0;
  EXPECT_NE(pattern_fingerprint(zeroed, true), valued_base);
  EXPECT_EQ(pattern_fingerprint(zeroed, false), base);
}

// ---------------------------------------------------------------------------
// Plan-aware applications
// ---------------------------------------------------------------------------

TEST(PlanApps, KtrussMatchesPlanlessAndAmortizes) {
  // ktruss requires a symmetric simple adjacency (its planless path builds
  // B's CSC as a view of the CSR arrays, valid only under symmetry).
  const auto g =
      remove_diagonal(symmetrize(erdos_renyi<int, double>(120, 8.0, 191)));
  for (Scheme s : {Scheme::kMsa1P, Scheme::kHash2P, Scheme::kInner2P}) {
    SCOPED_TRACE(scheme_name(s));
    const auto planless = ktruss(g, 5, s);
    ExecutionContext ctx;
    const auto first = ktruss(g, 5, s, 1000, &ctx);
    EXPECT_TRUE(csr_equal(planless.truss, first.truss));
    EXPECT_EQ(planless.iterations, first.iterations);
    EXPECT_EQ(planless.flops, first.flops);
    // A repeated run over the same graph hits the cache on every iteration
    // and skips every symbolic pass (2P) from the adopted structures.
    const auto second = ktruss(g, 5, s, 1000, &ctx);
    EXPECT_TRUE(csr_equal(planless.truss, second.truss));
    EXPECT_EQ(second.plan_stats.plan_hits, second.plan_stats.calls);
    EXPECT_DOUBLE_EQ(second.plan_stats.symbolic_seconds, 0.0);
  }
}

TEST(PlanApps, TricountMatchesPlanless) {
  const auto g =
      remove_diagonal(symmetrize(erdos_renyi<int, double>(150, 10.0, 201)));
  const auto input = tricount_prepare(g);
  for (Scheme s :
       {Scheme::kMsa1P, Scheme::kMca2P, Scheme::kInner1P, Scheme::kSsDot}) {
    SCOPED_TRACE(scheme_name(s));
    const auto planless = triangle_count(input, s);
    ExecutionContext ctx;
    const auto r1 = triangle_count(input, s, &ctx);
    const auto r2 = triangle_count(input, s, &ctx);
    EXPECT_EQ(planless.triangles, r1.triangles);
    EXPECT_EQ(planless.triangles, r2.triangles);
  }
}

TEST(PlanApps, BetweennessCentralityMatchesPlanless) {
  const auto g =
      remove_diagonal(symmetrize(erdos_renyi<int, double>(100, 6.0, 211)));
  const std::vector<int> sources = {0, 3, 17, 42};
  for (Scheme s : {Scheme::kMsa1P, Scheme::kHash2P}) {
    SCOPED_TRACE(scheme_name(s));
    const auto planless = betweenness_centrality(g, sources, s);
    ExecutionContext ctx;
    const auto first = betweenness_centrality(g, sources, s, &ctx);
    const auto second = betweenness_centrality(g, sources, s, &ctx);
    ASSERT_EQ(planless.centrality.size(), first.centrality.size());
    for (std::size_t v = 0; v < planless.centrality.size(); ++v) {
      EXPECT_DOUBLE_EQ(planless.centrality[v], first.centrality[v]) << v;
      EXPECT_DOUBLE_EQ(planless.centrality[v], second.centrality[v]) << v;
    }
    EXPECT_EQ(planless.depth, first.depth);
    // BC's frontier patterns are deterministic → full reuse on the rerun.
    EXPECT_EQ(second.plan_stats.plan_hits, second.plan_stats.calls);
  }
}

// ---------------------------------------------------------------------------
// Planless chunk derivation (the fixed knob)
// ---------------------------------------------------------------------------

TEST(AutoChunk, DerivedChunkIsSane) {
  EXPECT_GE(detail::auto_chunk<int>(0), 1);
  EXPECT_GE(detail::auto_chunk<int>(1), 1);
  EXPECT_LE(detail::auto_chunk<int>(1 << 30), 4096);
  // Explicit chunk requests are honored verbatim.
  EXPECT_EQ(detail::resolve_chunk<int>(64, 1 << 20), 64);
  EXPECT_EQ(detail::resolve_chunk<int>(0, 1 << 20),
            detail::auto_chunk<int>(1 << 20));
}

}  // namespace
