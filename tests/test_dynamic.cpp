// Streaming graph updates (ctest label: dynamic; the sanitizer/TSan CI
// sweeps include it alongside fuzz/storage).
//
// The house rule under test: after ANY sequence of apply/compact/query
// operations, a query through the incremental machinery — DeltaMatrix +
// BoundMatrix::structure_changed + partial plan refresh (monolithic), or
// DeltaMatrix + ShardedMatrix::refresh_rows (tiled) — must be bit-identical
// to rebuilding everything from scratch on the merged matrix.
//
// Layers:
//  * DeltaOverlay / DeltaMatrix unit tests — tombstone rows, last-wins
//    batches, mutation receipts, auto/manual compaction, epoching;
//  * Engine/TiledEngine integration — partial plan refresh really skips
//    untouched row blocks (plan_rows_refreshed / symbolic_skipped proof),
//    per-shard invalidation re-fingerprints only overlapping shards;
//  * randomized differential fuzzers — seeded interleaved
//    insert/delete/query/compact streams against a std::map model, across
//    scheme families × mask kinds × semantics × {int, int64_t} ×
//    monolithic/sharded execution;
//  * a concurrent updater-vs-snapshot-readers stress for the TSan job
//    (`ctest -L 'fuzz|storage|dynamic'` under -DMSPGEMM_TSAN=ON).
//
// Seeding follows the suite convention: deterministic by default,
// MSP_TEST_SEED replays a failure, MSP_TEST_TRIALS scales the trial count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <iterator>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/tiled_engine.hpp"
#include "gen/rng.hpp"
#include "matrix/convert.hpp"
#include "matrix/coo.hpp"
#include "matrix/delta.hpp"
#include "test_support.hpp"

namespace {

using namespace msp;
using msp::testing::csr_equal;
using msp::testing::random_csr;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

std::uint64_t base_seed() { return env_u64("MSP_TEST_SEED", 20260808ULL); }

int trial_count(int fallback) {
  const bool seeded = std::getenv("MSP_TEST_SEED") != nullptr &&
                      *std::getenv("MSP_TEST_SEED") != '\0';
  return static_cast<int>(
      env_u64("MSP_TEST_TRIALS", seeded ? 1 : static_cast<std::uint64_t>(
                                               fallback)));
}

// ---------------------------------------------------------------------------
// DeltaOverlay
// ---------------------------------------------------------------------------

TEST(DeltaOverlayTest, StoresEmptyRowsAsTombstones) {
  using Ov = DeltaOverlay<int, double>;
  Ov ov;
  const std::vector<int> cols1{1, 3};
  const std::vector<double> vals1{2.0, 4.0};
  std::vector<Ov::RowEdit<double>> edits;
  edits.push_back({2, cols1, vals1});
  edits.push_back({5, {}, {}});  // row 5 now has exactly no entries
  ov.replace_rows(edits);

  EXPECT_EQ(ov.stored_rows(), 2u);
  EXPECT_EQ(ov.nnz(), 2u);
  ASSERT_NE(ov.find(2), Ov::npos);
  ASSERT_NE(ov.find(5), Ov::npos);
  EXPECT_EQ(ov.find(0), Ov::npos);
  EXPECT_TRUE(ov.stored_row_cols(ov.find(5)).empty());
  EXPECT_TRUE(ov.check_structure(8, 8));

  // Replacing a stored row overwrites it wholesale.
  const std::vector<int> cols2{0};
  const std::vector<double> vals2{7.0};
  edits.clear();
  edits.push_back({2, cols2, vals2});
  ov.replace_rows(edits);
  EXPECT_EQ(ov.stored_rows(), 2u);
  const auto r2 = ov.stored_row_cols(ov.find(2));
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0], 0);
}

// ---------------------------------------------------------------------------
// DeltaMatrix
// ---------------------------------------------------------------------------

CsrMatrix<int, double> tiny_base() {
  // 4x4: row 0 = {0:1, 2:2}, row 1 = {}, row 2 = {1:3}, row 3 = {3:4}
  CooMatrix<int, double> coo(4, 4);
  coo.push(0, 0, 1.0);
  coo.push(0, 2, 2.0);
  coo.push(2, 1, 3.0);
  coo.push(3, 3, 4.0);
  return coo_to_csr(std::move(coo));
}

TEST(DeltaMatrixTest, BatchReceiptsAndLastWins) {
  DeltaMatrix<int, double> dm(tiny_base(), /*compact_threshold=*/100.0);
  const std::vector<EdgeUpdate<int, double>> edits{
      {0, 1, 5.0, false},   // insert
      {0, 0, 9.0, false},   // assign over existing
      {2, 1, 0.0, true},    // remove existing
      {3, 2, 1.0, true},    // remove absent: no-op
      {1, 3, 6.0, false},   // insert, then overwritten below (last wins)
      {1, 3, 7.0, false},
  };
  const auto res = dm.apply_updates(edits);
  EXPECT_EQ(res.inserted, 2u);
  EXPECT_EQ(res.assigned, 1u);
  EXPECT_EQ(res.removed, 1u);
  EXPECT_EQ(res.row_begin, 0);
  EXPECT_EQ(res.row_end, 4);
  EXPECT_EQ(res.epoch, 1u);
  EXPECT_FALSE(res.compacted);
  EXPECT_EQ(dm.epoch(), 1u);
  EXPECT_EQ(dm.pending_rows(), 4u);

  CooMatrix<int, double> want(4, 4);
  want.push(0, 0, 9.0);
  want.push(0, 1, 5.0);
  want.push(0, 2, 2.0);
  want.push(1, 3, 7.0);
  want.push(3, 3, 4.0);
  EXPECT_TRUE(csr_equal(coo_to_csr(std::move(want)), dm.matrix()));

  // The merged-row adapters agree with the materialized CSR everywhere.
  for (int i = 0; i < dm.nrows(); ++i) {
    const auto cols = dm.merged_row_cols(i);
    const auto live = dm.matrix().row_cols(i);
    ASSERT_EQ(cols.size(), live.size()) << "row " << i;
    for (std::size_t p = 0; p < cols.size(); ++p) {
      EXPECT_EQ(cols[p], live[p]);
      EXPECT_EQ(dm.merged_row_vals(i)[p], dm.matrix().row_vals(i)[p]);
    }
  }
}

TEST(DeltaMatrixTest, CompactIsObservationallyIdle) {
  DeltaMatrix<int, double> dm(tiny_base(), 100.0);
  dm.apply_updates(std::vector<EdgeUpdate<int, double>>{{1, 1, 5.0, false}});
  const CsrMatrix<int, double> before = dm.matrix();
  const auto epoch = dm.epoch();
  EXPECT_GT(dm.pending_nnz(), 0u);
  dm.compact();
  EXPECT_EQ(dm.pending_nnz(), 0u);
  EXPECT_EQ(dm.epoch(), epoch);
  EXPECT_TRUE(csr_equal(before, dm.matrix()));
  EXPECT_TRUE(csr_equal(before, dm.base()));
}

TEST(DeltaMatrixTest, AutoCompactsPastThreshold) {
  // Threshold 0: any pending entry triggers compaction at batch end.
  DeltaMatrix<int, double> dm(tiny_base(), 0.0);
  const auto res = dm.apply_updates(
      std::vector<EdgeUpdate<int, double>>{{1, 1, 5.0, false}});
  EXPECT_TRUE(res.compacted);
  EXPECT_EQ(dm.pending_nnz(), 0u);
  EXPECT_TRUE(csr_equal(dm.base(), dm.matrix()));
}

TEST(DeltaMatrixTest, OutOfRangeCoordinateThrows) {
  DeltaMatrix<int, double> dm(tiny_base());
  EXPECT_THROW(dm.apply_updates(std::vector<EdgeUpdate<int, double>>{
                   {4, 0, 1.0, false}}),
               invalid_argument_error);
  EXPECT_THROW(dm.apply_updates(std::vector<EdgeUpdate<int, double>>{
                   {0, -1, 1.0, false}}),
               invalid_argument_error);
}

TEST(DeltaMatrixTest, MatrixAddressStableAcrossUpdates) {
  DeltaMatrix<int, double> dm(tiny_base(), 100.0);
  const CsrMatrix<int, double>* addr = &dm.matrix();
  dm.apply_updates(std::vector<EdgeUpdate<int, double>>{{0, 3, 1.0, false}});
  dm.compact();
  EXPECT_EQ(addr, &dm.matrix());
}

// ---------------------------------------------------------------------------
// Engine::update — monolithic incremental path
// ---------------------------------------------------------------------------

TEST(EngineUpdateTest, MismatchedHandleThrows) {
  DeltaMatrix<int, double> dm(tiny_base());
  const auto other = tiny_base();
  Engine eng;
  BoundMatrix<int, double> wrong(other);
  EXPECT_THROW(eng.update(dm, wrong,
                          std::span<const EdgeUpdate<int, double>>{}),
               invalid_argument_error);
}

TEST(EngineUpdateTest, UntouchedRowBlocksSkipSymbolic) {
  using SR = PlusTimes<double>;
  const int n = 2048;  // 8 dirty-tracking blocks of kPlanDirtyBlockRows=256
  const auto base = random_csr<int, double>(n, n, 8.0 / n, base_seed());
  const auto b = random_csr<int, double>(n, n, 8.0 / n, base_seed() + 1);
  const auto m = random_csr<int, double>(n, n, 16.0 / n, base_seed() + 2);

  DeltaMatrix<int, double> dm(base, /*compact_threshold=*/100.0);
  Engine eng;
  BoundMatrix<int, double> ah(dm.matrix());
  BoundMatrix<int, double> bh(b);

  // First update before any query: the handle switches to its identity
  // fingerprint here, so the plan built by the warm-up query below is
  // already keyed by it. No mask handle: with all three operands bound
  // the engine would answer from the result splice instead (covered by
  // ResultSpliceRecomputesOnlyDirtyRows below); A+B handles exercise the
  // plan-layer partial refresh this test is about.
  eng.update(dm, ah, std::span<const EdgeUpdate<int, double>>(
                         std::vector<EdgeUpdate<int, double>>{
                             {0, 1, 1.0, false}}));

  MaskedSpgemmStats st;
  const auto c0 = eng.multiply_scheme<SR>(Scheme::kMsa2P, dm.matrix(), b, m,
                                          MaskKind::kMask,
                                          MaskSemantics::kStructural, &st,
                                          &ah, &bh, nullptr);
  EXPECT_FALSE(st.plan_cache_hit);

  // Small update confined to the first block; the next query must hit the
  // cached plan, refresh only that block's rows, and skip its symbolic
  // phase outright.
  eng.update(dm, ah, std::span<const EdgeUpdate<int, double>>(
                         std::vector<EdgeUpdate<int, double>>{
                             {3, 5, 2.0, false}, {7, 2, 0.0, true}}));
  const auto c1 = eng.multiply_scheme<SR>(Scheme::kMsa2P, dm.matrix(), b, m,
                                          MaskKind::kMask,
                                          MaskSemantics::kStructural, &st,
                                          &ah, &bh, nullptr);
  EXPECT_TRUE(st.plan_cache_hit);
  EXPECT_TRUE(st.symbolic_skipped);
  EXPECT_GT(st.plan_rows_refreshed, 0u);
  EXPECT_LE(st.plan_rows_refreshed, 512u);  // ≤ two 256-row blocks
  EXPECT_GE(eng.cache_stats().plan_partial_refreshes, 1u);
  EXPECT_GE(eng.cache_stats().plan_rows_refreshed, st.plan_rows_refreshed);

  // And the incremental answer is the rebuilt-from-scratch answer.
  Engine fresh;
  const auto want = fresh.multiply_scheme<SR>(Scheme::kMsa2P, dm.matrix(), b,
                                              m, MaskKind::kMask);
  EXPECT_TRUE(csr_equal(want, c1));
  (void)c0;
}

TEST(EngineUpdateTest, ResultSpliceRecomputesOnlyDirtyRows) {
  using SR = PlusTimes<double>;
  const int n = 2048;
  const auto base = random_csr<int, double>(n, n, 8.0 / n, base_seed() + 5);
  const auto b = random_csr<int, double>(n, n, 8.0 / n, base_seed() + 6);
  const auto m = random_csr<int, double>(n, n, 16.0 / n, base_seed() + 7);

  DeltaMatrix<int, double> dm(base, 100.0);
  Engine eng;
  BoundMatrix<int, double> ah(dm.matrix());
  BoundMatrix<int, double> bh(b);
  BoundMatrix<int, double> mh(m);

  // Warm-up: identity fingerprint first, then the query that seeds the
  // result cache (all three handles bound → splice-eligible).
  eng.update(dm, ah, std::span<const EdgeUpdate<int, double>>(
                         std::vector<EdgeUpdate<int, double>>{
                             {0, 1, 1.0, false}}));
  (void)eng.multiply_scheme<SR>(Scheme::kMsa2P, dm.matrix(), b, m,
                                MaskKind::kMask, MaskSemantics::kStructural,
                                nullptr, &ah, &bh, &mh);
  EXPECT_EQ(eng.result_cache_size(), 1u);

  // A small scattered update: the next query must answer from the splice —
  // recompute only the dirty runs, reuse every other cached row.
  eng.update(dm, ah, std::span<const EdgeUpdate<int, double>>(
                         std::vector<EdgeUpdate<int, double>>{
                             {3, 5, 2.0, false}, {1900, 2, 3.0, false}}));
  MaskedSpgemmStats st;
  const auto c1 = eng.multiply_scheme<SR>(Scheme::kMsa2P, dm.matrix(), b, m,
                                          MaskKind::kMask,
                                          MaskSemantics::kStructural, &st,
                                          &ah, &bh, &mh);
  EXPECT_TRUE(st.plan_cache_hit);
  EXPECT_TRUE(st.symbolic_skipped);
  EXPECT_GT(st.plan_rows_refreshed, 0u);
  EXPECT_LT(st.plan_rows_refreshed, static_cast<std::size_t>(n) / 2);
  EXPECT_GE(eng.cache_stats().result_splices, 1u);
  EXPECT_EQ(eng.cache_stats().result_rows_recomputed, st.plan_rows_refreshed);

  Engine fresh;
  const auto want = fresh.multiply_scheme<SR>(Scheme::kMsa2P, dm.matrix(), b,
                                              m, MaskKind::kMask);
  EXPECT_TRUE(csr_equal(want, c1));

  // No updates in between → the cached result is returned outright.
  MaskedSpgemmStats st2;
  const auto c2 = eng.multiply_scheme<SR>(Scheme::kMsa2P, dm.matrix(), b, m,
                                          MaskKind::kMask,
                                          MaskSemantics::kStructural, &st2,
                                          &ah, &bh, &mh);
  EXPECT_TRUE(st2.plan_cache_hit);
  EXPECT_TRUE(csr_equal(c1, c2));
  EXPECT_GE(eng.cache_stats().result_splices, 2u);

  // Mutating B invalidates the cached result: the full path runs again
  // (values_version mismatch), and stays bit-identical.
  bh.values_changed();
  MaskedSpgemmStats st3;
  const auto c3 = eng.multiply_scheme<SR>(Scheme::kMsa2P, dm.matrix(), b, m,
                                          MaskKind::kMask,
                                          MaskSemantics::kStructural, &st3,
                                          &ah, &bh, &mh);
  EXPECT_TRUE(csr_equal(c1, c3));  // values unchanged in place, only marked
  eng.clear();
  EXPECT_EQ(eng.result_cache_size(), 0u);
}

// ---------------------------------------------------------------------------
// TiledEngine::update — per-shard invalidation
// ---------------------------------------------------------------------------

TEST(TiledUpdateTest, RefreshesOnlyOverlappingShards) {
  using SR = PlusPair<double>;
  const int n = 256;
  const auto base = random_csr<int, double>(n, n, 0.05, base_seed() + 10);
  const auto b = random_csr<int, double>(n, n, 0.05, base_seed() + 11);
  const auto m = random_csr<int, double>(n, n, 0.08, base_seed() + 12);

  DeltaMatrix<int, double> dm(base, 100.0);
  ShardedMatrix<int, double> ash(dm.matrix(), 4);
  const ShardedMatrix<int, double> msh(m, ash);
  std::vector<std::uint64_t> fp0;
  for (int s = 0; s < ash.shards(); ++s) fp0.push_back(ash.fingerprint(s));

  TiledEngine tiled;
  const auto c0 = tiled.multiply<SR>(Scheme::kMsa2P, ash, b, msh);

  // Rows 70..72 live in shard 1 of the even 4-way split of 256 rows.
  const auto res = tiled.update(
      dm, ash,
      std::span<const EdgeUpdate<int, double>>(
          std::vector<EdgeUpdate<int, double>>{{70, 3, 1.0, false},
                                               {72, 9, 2.0, false}}));
  EXPECT_EQ(res.row_begin, 70);
  EXPECT_EQ(res.row_end, 73);
  EXPECT_EQ(ash.fingerprint(0), fp0[0]);
  EXPECT_NE(ash.fingerprint(1), fp0[1]);
  EXPECT_EQ(ash.fingerprint(2), fp0[2]);
  EXPECT_EQ(ash.fingerprint(3), fp0[3]);
  EXPECT_TRUE(csr_equal(dm.matrix(),
                        stitch_row_blocks(
                            std::vector<CsrMatrix<int, double>>{
                                *ash.lease(0), *ash.lease(1), *ash.lease(2),
                                *ash.lease(3)},
                            n)));

  const auto c1 = tiled.multiply<SR>(Scheme::kMsa2P, ash, b, msh);
  Engine fresh;
  const auto want = fresh.multiply_scheme<SR>(Scheme::kMsa2P, dm.matrix(), b,
                                              m, MaskKind::kMask);
  EXPECT_TRUE(csr_equal(want, c1));
  (void)c0;
}

TEST(TiledUpdateTest, RefreshRowsRejectsShapeChange) {
  const auto a = random_csr<int, double>(32, 32, 0.1, base_seed() + 20);
  const auto wrong = random_csr<int, double>(16, 32, 0.1, base_seed() + 21);
  ShardedMatrix<int, double> sh(a, 2);
  EXPECT_THROW(sh.refresh_rows(wrong, 0, 4), invalid_argument_error);
}

// ---------------------------------------------------------------------------
// Randomized differential fuzzers
// ---------------------------------------------------------------------------

template <class IT, class VT>
CsrMatrix<IT, VT> model_to_csr(const std::map<std::pair<IT, IT>, VT>& model,
                               IT n) {
  CooMatrix<IT, VT> coo(n, n);
  for (const auto& [coord, v] : model) coo.push(coord.first, coord.second, v);
  return coo_to_csr(std::move(coo));
}

template <class IT, class VT>
std::vector<EdgeUpdate<IT, VT>> random_edits(Xoshiro256& rng, IT n,
                                             std::size_t count) {
  std::vector<EdgeUpdate<IT, VT>> edits;
  edits.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    EdgeUpdate<IT, VT> e;
    e.row = static_cast<IT>(rng.next_below(static_cast<std::uint64_t>(n)));
    e.col = static_cast<IT>(rng.next_below(static_cast<std::uint64_t>(n)));
    e.remove = rng.next_double() < 0.35;
    e.value = static_cast<VT>(1 + rng.next_below(9));
    edits.push_back(e);
  }
  return edits;
}

template <class IT, class VT>
void apply_to_model(std::map<std::pair<IT, IT>, VT>& model,
                    const std::vector<EdgeUpdate<IT, VT>>& edits) {
  // Sequential application == last-wins batch semantics.
  for (const auto& e : edits) {
    if (e.remove) {
      model.erase({e.row, e.col});
    } else {
      model[{e.row, e.col}] = e.value;
    }
  }
}

struct FuzzConfig {
  Scheme scheme;
  MaskKind kind;
  MaskSemantics semantics;
};

FuzzConfig random_config(Xoshiro256& rng) {
  // One representative per kernel family plus a planless baseline; the
  // full scheme × kind × semantics cross is the conformance suite's job —
  // here each trial draws one configuration so the stream interleavings
  // get the coverage.
  static const Scheme kSchemes[] = {Scheme::kMsa1P,  Scheme::kMsa2P,
                                    Scheme::kHash2P, Scheme::kHeap1P,
                                    Scheme::kInner2P, Scheme::kSsDot,
                                    Scheme::kAuto};
  FuzzConfig cfg;
  cfg.scheme = kSchemes[rng.next_below(std::size(kSchemes))];
  cfg.kind = rng.next_double() < 0.3 && scheme_supports_complement(cfg.scheme)
                 ? MaskKind::kComplement
                 : MaskKind::kMask;
  cfg.semantics = rng.next_double() < 0.3 ? MaskSemantics::kValued
                                          : MaskSemantics::kStructural;
  return cfg;
}

/// One monolithic trial: an interleaved stream of update batches, manual
/// compactions, and queries, each query checked bit-identical against a
/// from-scratch rebuild (fresh engine, no handles, model-rebuilt CSR).
template <class IT>
void run_monolithic_trial(std::uint64_t seed) {
  using VT = double;
  using SR = PlusTimes<VT>;
  SCOPED_TRACE("monolithic trial seed " + std::to_string(seed) +
               " (replay: MSP_TEST_SEED=" + std::to_string(seed) +
               " MSP_TEST_TRIALS=1)");
  Xoshiro256 rng(seed);
  const IT n = static_cast<IT>(32 + rng.next_below(65));
  const auto base =
      random_csr<IT, VT>(n, n, 0.06, rng.next_below(1u << 30));
  const auto b = random_csr<IT, VT>(n, n, 0.06, rng.next_below(1u << 30));
  // ~15% explicit zeros in the mask so valued semantics differ.
  auto m = random_csr<IT, VT>(n, n, 0.10, rng.next_below(1u << 30));
  for (auto& v : m.values) {
    if (rng.next_double() < 0.15) v = VT{};
  }

  std::map<std::pair<IT, IT>, VT> model;
  for (IT i = 0; i < n; ++i) {
    for (IT p = base.rowptr[i]; p < base.rowptr[i + 1]; ++p) {
      model[{i, base.colids[p]}] = base.values[p];
    }
  }

  // Random per-trial compaction threshold exercises auto-compaction mid
  // stream; a large one keeps the overlay growing across batches.
  const double threshold = rng.next_double() < 0.5 ? 0.05 : 10.0;
  DeltaMatrix<IT, VT> dm(base, threshold);
  Engine eng;
  BoundMatrix<IT, VT> ah(dm.matrix());
  BoundMatrix<IT, VT> bh(b);
  BoundMatrix<IT, VT> mh(m);
  const FuzzConfig cfg = random_config(rng);

  const int steps = 10;
  for (int step = 0; step < steps; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    const double dice = rng.next_double();
    if (dice < 0.45) {
      const auto edits = random_edits<IT, VT>(
          rng, n, 1 + rng.next_below(static_cast<std::uint64_t>(n)));
      const auto res = eng.update(
          dm, ah, std::span<const EdgeUpdate<IT, VT>>(edits));
      apply_to_model(model, edits);
      EXPECT_EQ(dm.nnz(), model.size());
      ASSERT_TRUE(csr_equal(model_to_csr(model, n), dm.matrix()));
      (void)res;
    } else if (dice < 0.55) {
      dm.compact();
      EXPECT_EQ(dm.pending_nnz(), 0u);
    } else {
      MaskedSpgemmStats st;
      const auto got = eng.multiply_scheme<SR>(
          cfg.scheme, dm.matrix(), b, m, cfg.kind, cfg.semantics, &st, &ah,
          &bh, &mh);
      Engine fresh;
      const auto want = fresh.multiply_scheme<SR>(
          cfg.scheme, model_to_csr(model, n), b, m, cfg.kind, cfg.semantics);
      ASSERT_TRUE(csr_equal(want, got))
          << scheme_name(cfg.scheme) << " kind="
          << (cfg.kind == MaskKind::kMask ? "mask" : "complement")
          << " semantics="
          << (cfg.semantics == MaskSemantics::kStructural ? "structural"
                                                          : "valued");
    }
  }
}

/// One sharded trial: same stream shape, updates routed through
/// TiledEngine::update (per-shard invalidation), queries through the tiled
/// multiply against a monolithic from-scratch rebuild.
template <class IT>
void run_sharded_trial(std::uint64_t seed) {
  using VT = double;
  using SR = PlusTimes<VT>;
  SCOPED_TRACE("sharded trial seed " + std::to_string(seed) +
               " (replay: MSP_TEST_SEED=" + std::to_string(seed) +
               " MSP_TEST_TRIALS=1)");
  Xoshiro256 rng(seed);
  const IT n = static_cast<IT>(32 + rng.next_below(65));
  const int shards = 2 + static_cast<int>(rng.next_below(4));
  const auto base =
      random_csr<IT, VT>(n, n, 0.06, rng.next_below(1u << 30));
  const auto b = random_csr<IT, VT>(n, n, 0.06, rng.next_below(1u << 30));
  const auto m = random_csr<IT, VT>(n, n, 0.10, rng.next_below(1u << 30));

  std::map<std::pair<IT, IT>, VT> model;
  for (IT i = 0; i < n; ++i) {
    for (IT p = base.rowptr[i]; p < base.rowptr[i + 1]; ++p) {
      model[{i, base.colids[p]}] = base.values[p];
    }
  }

  DeltaMatrix<IT, VT> dm(base, rng.next_double() < 0.5 ? 0.05 : 10.0);
  ShardedMatrix<IT, VT> ash(dm.matrix(), shards);
  const ShardedMatrix<IT, VT> msh(m, ash);
  TiledEngine tiled;
  FuzzConfig cfg = random_config(rng);

  const int steps = 8;
  for (int step = 0; step < steps; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    const double dice = rng.next_double();
    if (dice < 0.5) {
      const auto edits = random_edits<IT, VT>(
          rng, n, 1 + rng.next_below(static_cast<std::uint64_t>(n)));
      tiled.update(dm, ash, std::span<const EdgeUpdate<IT, VT>>(edits));
      apply_to_model(model, edits);
      ASSERT_TRUE(csr_equal(model_to_csr(model, n), dm.matrix()));
    } else {
      MaskedSpgemmStats st;
      const auto got = tiled.multiply<SR>(cfg.scheme, ash, b, msh, cfg.kind,
                                          cfg.semantics, &st);
      Engine fresh;
      const auto want = fresh.multiply_scheme<SR>(
          cfg.scheme, model_to_csr(model, n), b, m, cfg.kind, cfg.semantics);
      ASSERT_TRUE(csr_equal(want, got)) << scheme_name(cfg.scheme);
    }
  }
}

TEST(DynamicFuzzTest, MonolithicUpdateStreamMatchesRebuild) {
  const int trials = trial_count(12);
  for (int i = 0; i < trials; ++i) {
    run_monolithic_trial<int>(base_seed() + static_cast<std::uint64_t>(i));
  }
}

TEST(DynamicFuzzTest, MonolithicUpdateStreamMatchesRebuildInt64) {
  const int trials = trial_count(4);
  for (int i = 0; i < trials; ++i) {
    run_monolithic_trial<std::int64_t>(base_seed() + 500 +
                                       static_cast<std::uint64_t>(i));
  }
}

TEST(DynamicFuzzTest, ShardedUpdateStreamMatchesRebuild) {
  const int trials = trial_count(8);
  for (int i = 0; i < trials; ++i) {
    run_sharded_trial<int>(base_seed() + 1000 +
                           static_cast<std::uint64_t>(i));
  }
}

TEST(DynamicFuzzTest, ShardedUpdateStreamMatchesRebuildInt64) {
  const int trials = trial_count(3);
  for (int i = 0; i < trials; ++i) {
    run_sharded_trial<std::int64_t>(base_seed() + 1500 +
                                    static_cast<std::uint64_t>(i));
  }
}

// ---------------------------------------------------------------------------
// Concurrency: one updater, snapshot-taking readers (TSan target)
// ---------------------------------------------------------------------------

TEST(DynamicFuzzTest, ConcurrentSnapshotReadersSeeConsistentEpochs) {
  using IT = int;
  using VT = double;
  using SR = PlusTimes<VT>;
  const IT n = 64;
  const auto base = random_csr<IT, VT>(n, n, 0.06, base_seed() + 2000);
  const auto b = random_csr<IT, VT>(n, n, 0.06, base_seed() + 2001);
  const auto m = random_csr<IT, VT>(n, n, 0.10, base_seed() + 2002);

  DeltaMatrix<IT, VT> dm(base, 0.3);
  std::atomic<bool> stop{false};

  const int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      Engine eng;
      while (!stop.load(std::memory_order_acquire)) {
        // A snapshot is an epoch-consistent merged matrix: structurally
        // valid, and stable while this reader multiplies it.
        const auto snap = dm.snapshot();
        EXPECT_TRUE(snap->check_structure());
        const auto c = eng.multiply_scheme<SR>(Scheme::kMsa1P, *snap, b, m,
                                               MaskKind::kMask);
        EXPECT_TRUE(c.check_structure());
        EXPECT_LE(c.nnz(), m.nnz());
      }
    });
  }

  Xoshiro256 rng(base_seed() + 2500);
  std::uint64_t last_epoch = dm.epoch();
  for (int batch = 0; batch < 40; ++batch) {
    const auto edits = random_edits<IT, VT>(rng, n, 1 + rng.next_below(24));
    const auto res =
        dm.apply_updates(std::span<const EdgeUpdate<IT, VT>>(edits));
    EXPECT_GE(res.epoch, last_epoch);  // epochs advance monotonically
    last_epoch = res.epoch;
    if (batch % 10 == 9) dm.compact();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  ASSERT_TRUE(csr_equal(dm.base(), dm.matrix()) || dm.pending_nnz() > 0);
}

}  // namespace
